"""The staged compile pipeline: parse → translate → logical plan →
rewrite rules → physical plan → execute.

Until now compilation was a monolith (``run_translated`` parsed,
translated, optimized, and executed in one opaque call).  This module
restages it as an explicit :class:`Pipeline` of named phases over one
:class:`~repro.runtime.context.QueryContext`:

* **parse** — concrete syntax → AST plus semantic analysis;
* **translate** — AST → the Section 5 flat-relational logical plan;
* **logical-plan** — the flat catalog is built and bound into the
  context (it feeds the cost-based rewrites);
* **rewrite rules** — each enabled
  :class:`~repro.sqlc.optimizer.RewriteRule` runs in order, recorded
  individually as a ``rewrite:<name>`` phase with the plan before and
  after;
* **physical-plan** — the physical rules (index-join selection,
  parallelism annotation) produce the executable plan;
* **bind** — a fresh flat catalog and a context carrying the database
  attach the (database-free) plan to this execution;
* **execute** — :func:`repro.sqlc.engine.execute` evaluates it.

With an active :class:`~repro.runtime.plancache.PlanCache` the whole
compile half is memoized on (raw AST, schema fingerprint, options): a
hit replays none of the phases above parse, recording a single
``plan-cache`` phase instead.

Every phase appends a :class:`~repro.runtime.context.PhaseRecord`
(timing, detail, and plan snapshots where applicable) to the context's
stats, which is what the CLI's ``--analyze`` renders as the per-phase
trace.  Compilation and execution read *all* options (cache, guard,
indexing, parallelism, optimizer) from the pipeline's context, so two
pipelines over different contexts are fully isolated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator, cast

from repro.core import ast
from repro.core.parser import parse_query
from repro.core.result import ResultRow, ResultSet
from repro.core.semantics import AnalyzedQuery, analyze
from repro.model.database import Database
from repro.model.relations import flatten
from repro.runtime import context as context_mod
from repro.runtime.context import (
    ExecutionStats,
    PhaseRecord,
    QueryContext,
)
from repro.runtime import plancache as plancache_mod
from repro.sqlc import engine
from repro.sqlc import optimizer as optimizer_mod
from repro.sqlc.algebra import Plan
from repro.sqlc.relation import ConstraintRelation


@dataclass
class CompiledQuery:
    """Product of the compile stages: a *database-free* physical plan.

    Plan nodes reference relations by catalog name and predicate
    closures resolve the database through
    :func:`repro.runtime.context.bound_db`, so a compiled query holds
    no live relations or context — it is exactly the value the plan
    cache shares across executions (and across databases with equal
    schemas).  :meth:`Pipeline.execute` binds it to a database."""

    analysis: AnalyzedQuery
    plan: Plan
    columns: tuple[str, ...]
    oid_column: str | None
    optimized: bool


#: Rows between guard checkpoints while streaming packaged results —
#: the granularity at which a cooperative cancel lands mid-stream.
STREAM_CHECK_EVERY = 64


class Pipeline:
    """The staged compiler/executor for one database and context.

    ``ctx`` defaults to the ambient context with a *fresh* stats
    account (so repeated pipeline runs do not grow the process-default
    account); pass an explicit context to direct the phase trace and
    counters somewhere specific.
    """

    def __init__(self, db: Database,
                 ctx: QueryContext | None = None) -> None:
        self.db = db
        base = context_mod.resolve(ctx)
        self.ctx = base if ctx is not None \
            else base.derive(stats=ExecutionStats())

    # -- phases ----------------------------------------------------------

    def compile(self, query: str | ast.Query) -> CompiledQuery:
        """Run every compile phase; execution is left to :meth:`run`.

        With an active plan cache the raw parsed AST is keyed against
        (schema fingerprint, plan-relevant options) first: a hit
        returns the shared :class:`CompiledQuery` after one guard
        checkpoint, recording a single ``plan-cache`` phase — analysis,
        translation and every rewrite are skipped entirely."""
        from repro.core.translator import translate_analyzed
        stats = self.ctx.stats

        started = time.perf_counter()
        cache = self.ctx.active_plan_cache()
        if not isinstance(query, str):
            query_ast = query
        elif cache is not None:
            # Parsing is pure syntax, so the cache memoizes it too —
            # the repeat-query path skips the tokenizer as well.
            query_ast = cache.ast_for(query, parse_query)
        else:
            query_ast = parse_query(query)

        key = None
        if cache is not None:
            invalidated_before = cache.invalidations
            fingerprint = cache.note_schema(self.db.schema)
            stats.plan_cache_invalidations += \
                cache.invalidations - invalidated_before
            key = plancache_mod.plan_key(query_ast, fingerprint,
                                         self.ctx)
            hit, compiled, saved = cache.lookup(key)
            if hit:
                stats.plan_cache_hits += 1
                stats.plan_compile_saved += saved
                stats.phases.append(PhaseRecord(
                    "plan-cache", time.perf_counter() - started,
                    detail=f"hit; skipped compile "
                           f"({saved * 1000:.3f} ms saved)"))
                if self.ctx.guard is not None:
                    self.ctx.guard.checkpoint("plan-cache")
                return cast(CompiledQuery, compiled)
            stats.plan_cache_misses += 1

        compile_started = time.perf_counter()
        analysis = analyze(self.db.schema, query_ast)
        stats.phases.append(PhaseRecord(
            "parse", time.perf_counter() - started,
            detail=f"{len(analysis.query.from_items)} FROM items, "
                   f"{len(analysis.query.select)} SELECT items"))

        started = time.perf_counter()
        translated = translate_analyzed(self.db, analysis)
        stats.phases.append(PhaseRecord(
            "translate", time.perf_counter() - started,
            detail=f"{len(translated.columns)} columns",
            plan_after=translated.plan.explain()))

        started = time.perf_counter()
        # The catalog built here feeds the cost-based rewrites only
        # (row-count estimates); execution flattens its own, so stale
        # sizes can cost performance but never correctness.
        catalog = flatten(self.db, shards=self.ctx.shards)
        exec_ctx = self.ctx.derive(catalog=catalog)
        total_rows = sum(len(r) for r in catalog.values())
        stats.phases.append(PhaseRecord(
            "logical-plan", time.perf_counter() - started,
            detail=f"catalog: {len(catalog)} relations, "
                   f"{total_rows} rows",
            plan_after=translated.plan.explain()))

        plan = translated.plan
        if exec_ctx.use_optimizer:
            plan = optimizer_mod.apply_rules(
                plan, exec_ctx, optimizer_mod.LOGICAL_RULES,
                record=True)
            started = time.perf_counter()
            plan = optimizer_mod.apply_rules(
                plan, exec_ctx, optimizer_mod.PHYSICAL_RULES,
                record=True)
            stats.phases.append(PhaseRecord(
                "physical-plan", time.perf_counter() - started,
                detail="index-join selection, parallelism",
                plan_after=plan.explain()))

        compiled = CompiledQuery(
            analysis=analysis, plan=plan,
            columns=translated.columns,
            oid_column=translated.oid_column,
            optimized=exec_ctx.use_optimizer)
        if cache is not None:
            cache.store(key, compiled,
                        time.perf_counter() - compile_started)
        return compiled

    def execute(self, compiled: CompiledQuery) -> ConstraintRelation:
        """Bind the database and evaluate an already-rewritten plan.

        The bind step is what replaces compile-time capture: a fresh
        flat catalog plus a context carrying ``db`` (for the plan's
        late-bound closures), recorded as its own phase."""
        stats = self.ctx.stats
        started = time.perf_counter()
        catalog = flatten(self.db, shards=self.ctx.shards)
        exec_ctx = self.ctx.derive(catalog=catalog, db=self.db)
        stats.phases.append(PhaseRecord(
            "bind", time.perf_counter() - started,
            detail=f"catalog: {len(catalog)} relations"))
        started = time.perf_counter()
        relation = engine.execute(
            compiled.plan, catalog,
            use_optimizer=False,  # the rewrite phases already ran
            ctx=exec_ctx)
        stats.phases.append(PhaseRecord(
            "execute", time.perf_counter() - started,
            detail=f"{len(relation)} rows"))
        stats.optimized = compiled.optimized
        return relation

    def run(self, query: str | ast.Query) -> ResultSet:
        """All phases end to end, re-packaging the flat relation into a
        :class:`ResultSet` comparable with the naive evaluator's."""
        return self.run_compiled(self.compile(query))

    def run_compiled(self, compiled: CompiledQuery) -> ResultSet:
        """Execute a compiled (possibly cache-shared) query against
        this pipeline's database and package the rows."""
        relation = self.execute(compiled)
        result = ResultSet(compiled.columns)
        for warning in self.ctx.stats.warnings:
            result.add_warning(warning)
        for row in self._package_rows(compiled, relation):
            result.add(row)
        return result

    def stream_compiled(self, compiled: CompiledQuery
                        ) -> "Iterator[ResultRow]":
        """Incremental variant of :meth:`run_compiled`: a generator of
        packaged result rows (deduplicated, in relation order).

        The flat engine evaluates bottom-up, so the *plan* still runs
        to completion on the first pull — cancellation during the
        solver-bound phase fires at the guard checkpoints inside plan
        evaluation — but row packaging (the per-row oid materialization
        the serving layer streams out) is lazy, with a guard checkpoint
        every :data:`STREAM_CHECK_EVERY` rows so a cooperative cancel
        issued mid-stream lands between batches.  Degrade policy is the
        caller's: under ``on_exhaustion="degrade"`` the engine already
        yields an empty relation plus a warning in the context's stats,
        which the caller surfaces (:class:`repro.lyric.QueryStream`
        turns it into ``warning`` frames)."""
        relation = self.execute(compiled)
        guard = self.ctx.guard
        for i, row in enumerate(self._package_rows(compiled, relation)):
            if guard is not None and i and i % STREAM_CHECK_EVERY == 0:
                guard.checkpoint("stream")
            yield row

    def _package_rows(self, compiled: CompiledQuery, relation:
                      ConstraintRelation) -> "Iterator[ResultRow]":
        """Flat relation rows -> deduplicated :class:`ResultRow`\\ s,
        mirroring :class:`~repro.core.result.ResultSet` insertion
        semantics so streamed rows match materialized ones exactly."""
        seen: set[tuple] = set()
        for row in relation:
            mapping = relation.row_dict(row)
            values = tuple(mapping[c] for c in compiled.columns)
            oid = mapping.get(compiled.oid_column) \
                if compiled.oid_column else None
            key = (values, oid)
            if key not in seen:
                seen.add(key)
                yield ResultRow(values, oid)


def render_trace(stats: ExecutionStats) -> str:
    """The per-phase timing trace (one line per recorded phase), as
    printed by ``--explain --analyze``."""
    lines = ["phase trace:"]
    for record in stats.phases:
        line = f"  {record.name:<32} {record.seconds * 1000:9.3f} ms"
        if record.detail:
            line += f"  {record.detail}"
        lines.append(line)
    if len(lines) == 1:
        lines.append("  (no phases recorded)")
    return "\n".join(lines)

"""Fluent programmatic construction of LyriC queries.

Applications embedding LyriC often assemble queries from fragments
instead of formatting text; the builder keeps the concrete syntax for
the fragments (paths, formulas, predicates — parsed with the real
parser, so there is exactly one grammar) while composing the clause
structure programmatically::

    from repro.core.builder import QueryBuilder

    query = (QueryBuilder()
             .select("CO")
             .select_formula("u,v", "E and D and x = 6 and y = 4",
                             name="placed")
             .from_("Office_Object", "CO")
             .where("CO.extent[E]", "CO.translation[D]")
             .build())
    result = query_builder_result = lyric.query(db, query)
"""

from __future__ import annotations

from repro.core import ast
from repro.core.parser import _Parser
from repro.errors import LyricSyntaxError


def _fragment_parser(text: str) -> _Parser:
    return _Parser(text)


def parse_select_item(text: str) -> ast.SelectItem:
    parser = _fragment_parser(text)
    item = parser.parse_select_item()
    parser.expect("eof")
    return item


def parse_predicate(text: str) -> ast.Where:
    parser = _fragment_parser(text)
    node = parser.parse_where()
    parser.expect("eof")
    return node


def parse_formula(head: str | None, body: str) -> ast.CstFormula:
    if head is not None:
        text = f"(({head}) | {body})"
        parser = _fragment_parser(text)
        formula = parser.parse_projection_formula()
    else:
        parser = _fragment_parser(body)
        formula = ast.CstFormula(None, parser.parse_formula_body())
    parser.expect("eof")
    return formula


def parse_arith(text: str) -> ast.Arith:
    parser = _fragment_parser(text)
    node = parser.parse_arith()
    parser.expect("eof")
    return node


class QueryBuilder:
    """Accumulates SELECT/FROM/WHERE pieces and builds a Query AST.

    All ``where`` additions are conjoined; use :meth:`where_any` for a
    disjunctive group.  The builder is mutable and chainable; ``build``
    may be called repeatedly (snapshots).
    """

    def __init__(self):
        self._select: list[ast.SelectItem] = []
        self._from: list[ast.FromItem] = []
        self._where: list[ast.Where] = []
        self._oid_function_of: tuple[str, ...] | None = None
        self._oid_function_name = "result"

    # -- SELECT -----------------------------------------------------------

    def select(self, *items: str) -> "QueryBuilder":
        """Add SELECT items in concrete syntax (``"X"``,
        ``"name = X.name"``, a full formula, ...)."""
        for text in items:
            self._select.append(parse_select_item(text))
        return self

    def select_formula(self, head: str, body: str,
                       name: str | None = None) -> "QueryBuilder":
        """Add a CST-formula item ``((head) | body)``."""
        formula = parse_formula(head, body)
        self._select.append(
            ast.SelectItem(ast.FormulaOut(formula), name))
        return self

    def _select_optimize(self, kind: ast.OptimizeKind, objective: str,
                         head: str | None, body: str,
                         name: str | None) -> "QueryBuilder":
        item = ast.OptimizeOut(kind, parse_arith(objective),
                               parse_formula(head, body))
        self._select.append(ast.SelectItem(item, name))
        return self

    def select_max(self, objective: str, body: str,
                   head: str | None = None,
                   name: str | None = None) -> "QueryBuilder":
        return self._select_optimize(ast.OptimizeKind.MAX, objective,
                                     head, body, name)

    def select_min(self, objective: str, body: str,
                   head: str | None = None,
                   name: str | None = None) -> "QueryBuilder":
        return self._select_optimize(ast.OptimizeKind.MIN, objective,
                                     head, body, name)

    def select_max_point(self, objective: str, body: str,
                         head: str | None = None,
                         name: str | None = None) -> "QueryBuilder":
        return self._select_optimize(ast.OptimizeKind.MAX_POINT,
                                     objective, head, body, name)

    def select_min_point(self, objective: str, body: str,
                         head: str | None = None,
                         name: str | None = None) -> "QueryBuilder":
        return self._select_optimize(ast.OptimizeKind.MIN_POINT,
                                     objective, head, body, name)

    # -- FROM ------------------------------------------------------------------

    def from_(self, class_name: str, var: str) -> "QueryBuilder":
        self._from.append(ast.FromItem(class_name, var))
        return self

    # -- WHERE -----------------------------------------------------------------------

    def where(self, *predicates: str) -> "QueryBuilder":
        """Conjoin predicates given in concrete syntax."""
        for text in predicates:
            self._where.append(parse_predicate(text))
        return self

    def where_any(self, *predicates: str) -> "QueryBuilder":
        """Conjoin a disjunctive group ``(p1 or p2 or ...)``."""
        parts = tuple(parse_predicate(t) for t in predicates)
        if not parts:
            raise LyricSyntaxError("where_any needs predicates")
        self._where.append(parts[0] if len(parts) == 1
                           else ast.WOr(parts))
        return self

    def where_sat(self, body: str) -> "QueryBuilder":
        """Conjoin the satisfiability predicate SAT(body)."""
        self._where.append(ast.WSat(parse_formula(None, body)))
        return self

    def where_entails(self, lhs: str, rhs: str) -> "QueryBuilder":
        """Conjoin the implication predicate ``lhs |= rhs`` (two
        formula bodies in concrete syntax)."""
        self._where.append(ast.WEntails(parse_formula(None, lhs),
                                        parse_formula(None, rhs)))
        return self

    def where_not(self, predicate: str) -> "QueryBuilder":
        self._where.append(ast.WNot(parse_predicate(predicate)))
        return self

    # -- OID FUNCTION -------------------------------------------------------------------

    def oid_function_of(self, *variables: str,
                        name: str = "result") -> "QueryBuilder":
        self._oid_function_of = tuple(variables)
        self._oid_function_name = name
        return self

    # -- build -----------------------------------------------------------------------------

    def build(self) -> ast.Query:
        if not self._select:
            raise LyricSyntaxError("a query needs a SELECT clause")
        if not self._from:
            raise LyricSyntaxError("a query needs a FROM clause")
        where: ast.Where | None = None
        if self._where:
            where = self._where[0] if len(self._where) == 1 \
                else ast.WAnd(tuple(self._where))
        return ast.Query(
            select=tuple(self._select),
            from_items=tuple(self._from),
            where=where,
            oid_function_of=self._oid_function_of,
            oid_function_name=self._oid_function_name)

    def run(self, db):
        """Build and evaluate against a database."""
        from repro.core.evaluator import evaluate
        return evaluate(db, self.build())

"""Instantiation of CST formulas (the constraint side of Section 4).

Given a variable environment produced by the evaluator, a
:class:`~repro.core.ast.CstFormula` is turned into a constraint-engine
object by:

1. evaluating pseudo-linear atoms — path expressions and object
   variables bound to numbers become rational constants, every other
   name becomes a constraint variable;
2. instantiating constraint-object references — the referenced CST
   value is renamed onto the attribute's declared variable schema
   ("variables are simply copied from the schema") or onto the explicit
   argument list ``O(x1..xn)``;
3. adding the **implicit equalities** of Section 4.1: for the last
   interface-renamed edge on the reference's binding path, each
   interface formal that occurs in the reference's schema is equated
   with the corresponding actual (``p = x1 and q = y1`` in the paper's
   drawer example) — together with textual variable identity inside the
   formula this reproduces every worked example in the paper;
4. composing with ``and``/``or``/``not`` under the family rules, and
   projecting onto the formula head.

One refinement over a literal reading of the paper: an implicit edge
equality is only *emitted* when its actual-parameter variable is used
somewhere else in the formula (or is a head variable).  When the actual
is used nowhere, the equality merely links an otherwise-unconstrained
variable and is semantically vacuous; dropping it also prevents two
same-named edges of *different* parent objects (e.g. two
``catalog_object`` traversals in one formula) from accidentally
identifying both parents' coordinate frames through the shared literal
actual names.
"""

from __future__ import annotations

from fractions import Fraction

from repro.constraints.atoms import Eq, LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import (
    CSTObject,
    _conjoin_any,
    _disjoin_any,
)
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import LinearExpression, Variable
from repro.core import ast
from repro.core.semantics import AnalyzedQuery
from repro.errors import EvaluationError
from repro.model.database import Database
from repro.model.oid import CstOid, LiteralOid, Oid
from repro.model.paths import PathExpression, VarRef, path_values

_RELOP_MAP = {
    "=": Relop.EQ, "!=": Relop.NE, "<": Relop.LT, "<=": Relop.LE,
    ">": Relop.GT, ">=": Relop.GE,
}


#: A pending implicit equality from an interface-renamed edge:
#: (runtime oids of the edge's source object, actual spec variable,
#: renamed formal variable).
PendingEq = tuple[frozenset, Variable, Variable]

#: An anchor: a reference that can resolve an actual variable to the
#: name the formula actually uses for it — (runtime oids of the
#: reference's parent object, spec-variable -> used-variable map).
Anchor = tuple[frozenset, dict]


def instantiate_body(db: Database, analysis: AnalyzedQuery,
                     node: ast.Formula, env
                     ) -> tuple[object, list[PendingEq], list[Anchor]]:
    """The formula body as a constraint-engine object (one of the four
    families), plus the not-yet-emitted implicit edge equalities and
    the anchors that can resolve them."""
    if isinstance(node, ast.FAtom):
        left = _arith(db, analysis, node.left, env)
        right = _arith(db, analysis, node.right, env)
        atom = ConjunctiveConstraint.of(
            LinearConstraint.build(left, _RELOP_MAP[node.relop], right))
        return atom, [], []
    if isinstance(node, ast.FRef):
        return _ref_constraint(db, analysis, node, env)
    if isinstance(node, ast.FAnd):
        result = ConjunctiveConstraint.true()
        pending: list[PendingEq] = []
        anchors: list[Anchor] = []
        for part in node.parts:
            constraint, part_pending, part_anchors = instantiate_body(
                db, analysis, part, env)
            result = _conjoin_any(result, constraint)
            pending.extend(part_pending)
            anchors.extend(part_anchors)
        return result, pending, anchors
    if isinstance(node, ast.FOr):
        # Implicit equalities are scoped to their own disjunct.
        parts = []
        for p in node.parts:
            constraint, part_pending, part_anchors = instantiate_body(
                db, analysis, p, env)
            parts.append(_apply_pending(
                constraint, part_pending, part_anchors, frozenset()))
        result = parts[0]
        for part in parts[1:]:
            result = _disjoin_any(result, part)
        return result, [], []
    if isinstance(node, ast.FNot):
        inner, pending, anchors = instantiate_body(
            db, analysis, node.part, env)
        inner = _apply_pending(inner, pending, anchors, frozenset())
        return _negate(inner), [], []
    if isinstance(node, ast.FTrue):
        return ConjunctiveConstraint.true(), [], []
    raise EvaluationError(f"unknown formula node {node!r}")


def _apply_pending(constraint, pending: list[PendingEq],
                   anchors: list[Anchor],
                   extra_used: frozenset[Variable]):
    """Emit the applicable implicit edge equalities.

    For each pending ``actual = formal'``: references whose parent
    object *is* the edge's source object and whose schema contains the
    actual variable resolve it to the name they use in this formula
    (the paper's "arguments of DSK.drawer_center must be equal to the
    arguments of DSK.drawer.translation").  Without such an anchor the
    equality is emitted with the literal actual name if — and only if —
    that name is used elsewhere in the formula or is a head variable;
    otherwise it is vacuous and dropped.
    """
    if not pending:
        return constraint
    used = frozenset(constraint.variables) | extra_used
    equalities = []
    for sources, actual, formal in pending:
        resolved = set()
        for parent_keys, rename in anchors:
            if sources and (parent_keys & sources) and actual in rename:
                resolved.add(rename[actual])
        if resolved:
            for name in resolved:
                if name != formal:
                    equalities.append(Eq(name, formal))
        elif actual in used:
            if actual != formal:
                equalities.append(Eq(actual, formal))
    if not equalities:
        return constraint
    return _conjoin_any(constraint, ConjunctiveConstraint(equalities))


def instantiate_formula(db: Database, analysis: AnalyzedQuery,
                        formula: ast.CstFormula, env) -> object:
    """Instantiate and, when the formula has a head, project onto it."""
    if formula.head is not None:
        return formula_to_cst(db, analysis, formula, env).constraint
    body, pending, anchors = instantiate_body(
        db, analysis, formula.body, env)
    return _apply_pending(body, pending, anchors, frozenset())


def formula_to_cst(db: Database, analysis: AnalyzedQuery,
                   formula: ast.CstFormula, env) -> CSTObject:
    """The CST object denoted by a formula with a projection head."""
    if formula.head is None:
        raise EvaluationError(
            "a SELECT-clause formula needs a projection head "
            "((x1..xn) | ...)")
    head_vars = [Variable(name) for name in formula.head]
    body, pending, anchors = instantiate_body(
        db, analysis, formula.body, env)
    body = _apply_pending(body, pending, anchors, frozenset(head_vars))
    projected = _project(body, head_vars)
    return CSTObject(head_vars, projected)


def satisfiable(db: Database, analysis: AnalyzedQuery,
                formula: ast.CstFormula, env) -> bool:
    """The WHERE-clause satisfiability predicate."""
    body = instantiate_formula(db, analysis, formula, env)
    return body.is_satisfiable()


def entails(db: Database, analysis: AnalyzedQuery,
            lhs: ast.CstFormula, rhs: ast.CstFormula, env) -> bool:
    """The WHERE-clause implication predicate ``lhs |= rhs``.

    Variables are matched by name (the Section 4.2 semantics).  When
    both sides carry definite schemas with disjoint names and equal
    dimension — e.g. two bare references to CST objects of the same
    class — matching falls back to positional renaming of the right
    side onto the left schema.
    """
    left_constraint, left_schema = _side(db, analysis, lhs, env)
    right_constraint, right_schema = _side(db, analysis, rhs, env)

    if (left_schema is not None and right_schema is not None
            and len(left_schema) == len(right_schema)
            and not ({v.name for v in left_schema}
                     & {v.name for v in right_schema})):
        mapping = dict(zip(right_schema, left_schema))
        right_constraint = right_constraint.rename(mapping)

    lhs_dex = DisjunctiveExistentialConstraint.of(left_constraint)
    rhs_dex = DisjunctiveExistentialConstraint.of(right_constraint)
    return lhs_dex.entails(rhs_dex)


def _side(db, analysis, formula: ast.CstFormula, env):
    """Instantiate one side of ``|=``; returns (constraint, schema) where
    schema is a definite variable order or None."""
    if formula.head is not None:
        cst = formula_to_cst(db, analysis, formula, env)
        return cst.constraint, cst.schema
    if isinstance(formula.body, ast.FRef):
        cst = _ref_cst_object(db, analysis, formula.body, env)
        return cst.constraint, cst.schema
    body = instantiate_formula(db, analysis, formula, env)
    return body, None


# ---------------------------------------------------------------------------
# Optimization operators
# ---------------------------------------------------------------------------


def optimize(db: Database, analysis: AnalyzedQuery,
             item: ast.OptimizeOut, env) -> Oid:
    """Evaluate MAX/MIN/MAX_POINT/MIN_POINT; returns the result oid
    (a numeric literal, or a singleton-point CST object)."""
    from repro.constraints import lp

    body, pending, anchors = instantiate_body(
        db, analysis, item.formula.body, env)
    head_vars = frozenset(Variable(n) for n in item.formula.head or ())
    system = _apply_pending(body, pending, anchors, head_vars)
    objective = _arith(db, analysis, item.objective, env)

    maximize = item.kind in (ast.OptimizeKind.MAX,
                             ast.OptimizeKind.MAX_POINT)
    # The lp module accepts every family: a disjunctive system is
    # optimized branch-wise (an extension over the paper's
    # existential-conjunctive typing; see lp._coerce_systems).
    result = lp.max_value(objective, system) if maximize \
        else lp.min_value(objective, system)

    if item.kind in (ast.OptimizeKind.MAX, ast.OptimizeKind.MIN):
        return LiteralOid(result.value)

    if item.formula.head is not None:
        point_vars = [Variable(n) for n in item.formula.head]
    else:
        point_vars = sorted(system.variables, key=lambda v: v.name)
    point = result.point_on(point_vars)
    atoms = [Eq(var, point[var]) for var in point_vars]
    return CstOid(CSTObject(point_vars, ConjunctiveConstraint(atoms)))


# ---------------------------------------------------------------------------
# Internals
# ---------------------------------------------------------------------------


def _project(body, head_vars: list[Variable]):
    head = frozenset(head_vars)
    if isinstance(body, ConjunctiveConstraint):
        body = ExistentialConjunctiveConstraint.of_conjunctive(body)
    return body.project(head)


def _negate(body):
    if isinstance(body, ConjunctiveConstraint):
        return DisjunctiveConstraint.negation_of_conjunctive(body)
    if isinstance(body, DisjunctiveConstraint):
        return body.negate()
    raise EvaluationError(
        "negation is only defined on conjunctive and disjunctive "
        "formulas (Section 3.1)")


def _arith(db: Database, analysis: AnalyzedQuery, node: ast.Arith,
           env) -> LinearExpression:
    if isinstance(node, ast.ANum):
        return LinearExpression.constant(node.value)
    if isinstance(node, ast.AName):
        bound = env.get(node.name)
        if bound is None:
            return Variable(node.name).as_expression()
        if isinstance(bound, LiteralOid) \
                and isinstance(bound.value, Fraction):
            return LinearExpression.constant(bound.value)
        raise EvaluationError(
            f"variable {node.name!r} is bound to {bound}, which is not "
            "a numeric constant usable in a pseudo-linear formula")
    if isinstance(node, ast.AParam):
        from repro.runtime.context import param_value
        bound = param_value(node.name)
        if isinstance(bound, LiteralOid) \
                and isinstance(bound.value, Fraction):
            return LinearExpression.constant(bound.value)
        raise EvaluationError(
            f"parameter ${node.name} is bound to {bound}, which is not "
            "a numeric constant usable in a pseudo-linear formula")
    if isinstance(node, ast.APath):
        return LinearExpression.constant(
            _numeric_path_value(db, node.path, env))
    if isinstance(node, ast.ABinary):
        left = _arith(db, analysis, node.left, env)
        right = _arith(db, analysis, node.right, env)
        if node.op == "+":
            return left + right
        if node.op == "-":
            return left - right
        if node.op == "*":
            return left * right
        if node.op == "/":
            if not right.is_constant():
                raise EvaluationError(
                    "division by a non-constant is not linear")
            return left / right.constant_term
        raise EvaluationError(f"unknown operator {node.op!r}")
    if isinstance(node, ast.ANeg):
        return -_arith(db, analysis, node.operand, env)
    raise EvaluationError(f"unknown arithmetic node {node!r}")


def _numeric_path_value(db: Database, path: PathExpression,
                        env) -> Fraction:
    values = path_values(db, path, env)
    if len(values) != 1:
        raise EvaluationError(
            f"path {path} must denote exactly one value in a "
            f"pseudo-linear formula; it denotes {len(values)}")
    (value,) = values
    if isinstance(value, LiteralOid) and isinstance(value.value, Fraction):
        return value.value
    raise EvaluationError(
        f"path {path} denotes {value}, which is not numeric")


def _ref_value(db: Database, ref: ast.FRef, env) -> CSTObject:
    if isinstance(ref.source, str):
        bound = env.get(ref.source)
        if bound is None:
            raise EvaluationError(
                f"constraint reference {ref.source!r} is unbound")
        if not isinstance(bound, CstOid):
            raise EvaluationError(
                f"constraint reference {ref.source!r} is bound to "
                f"{bound}, not a CST object")
        return bound.cst
    values = path_values(db, ref.source, env)
    cst_values = [v for v in values if isinstance(v, CstOid)]
    if len(cst_values) != 1:
        raise EvaluationError(
            f"path reference {ref.source} must denote exactly one CST "
            f"object; it denotes {len(cst_values)}")
    return cst_values[0].cst


def _ref_cst_object(db: Database, analysis: AnalyzedQuery,
                    ref: ast.FRef, env) -> CSTObject:
    """The referenced CST object renamed onto its schema-variable names
    (the attribute's CST spec) and then onto explicit arguments."""
    cst = _ref_value(db, ref, env)
    info = analysis.ref_info.get(ref)
    spec = info.spec if info is not None else None
    if spec is not None:
        if cst.dimension != spec.dimension:
            raise EvaluationError(
                f"reference {ref}: stored CST object has dimension "
                f"{cst.dimension}, schema declares {spec.dimension}")
        cst = cst.rename(spec.variables)
    if ref.args is not None:
        if len(ref.args) != cst.dimension:
            raise EvaluationError(
                f"reference {ref}: {len(ref.args)} arguments for a "
                f"{cst.dimension}-dimensional CST object")
        cst = cst.rename([Variable(a) for a in ref.args])
    return cst


def _ref_constraint(db: Database, analysis: AnalyzedQuery,
                    ref: ast.FRef, env
                    ) -> tuple[object, list[PendingEq], list[Anchor]]:
    """Reference constraint plus pending implicit equalities and the
    reference's anchor record."""
    info = analysis.ref_info.get(ref)
    base = _ref_value(db, ref, env)
    spec = info.spec if info is not None else None
    if spec is not None:
        if base.dimension != spec.dimension:
            raise EvaluationError(
                f"reference {ref}: stored CST object has dimension "
                f"{base.dimension}, schema declares {spec.dimension}")
        base = base.rename(spec.variables)
    schema_before_args = base.schema
    if ref.args is not None:
        if len(ref.args) != base.dimension:
            raise EvaluationError(
                f"reference {ref}: {len(ref.args)} arguments for a "
                f"{base.dimension}-dimensional CST object")
        base = base.rename([Variable(a) for a in ref.args])

    used_names = dict(zip(schema_before_args, base.schema))

    anchors: list[Anchor] = []
    if info is not None and info.parent_prefix is not None:
        parent_keys = _prefix_oids(db, info.parent_prefix, env)
        if parent_keys:
            anchors.append((parent_keys, used_names))

    pending: list[PendingEq] = []
    if info is not None and info.last_edge is not None \
            and info.last_edge.interface_args is not None:
        source_keys = _prefix_oids(db, info.edge_source, env)
        schema_set = set(schema_before_args)
        for actual, formal in zip(info.last_edge.interface_args,
                                  info.edge_formals):
            if formal in schema_set:
                pending.append((source_keys, actual,
                                used_names[formal]))
    return base.constraint, pending, anchors


def _prefix_oids(db: Database, prefix, env) -> frozenset:
    """Runtime oids denoted by an object-path prefix (empty when the
    prefix is unknown or unresolvable)."""
    if prefix is None:
        return frozenset()
    if not prefix.steps and isinstance(prefix.head, VarRef):
        bound = env.get(prefix.head.name)
        return frozenset((bound,)) if bound is not None else frozenset()
    if not prefix.steps:
        return frozenset((prefix.head,))
    return frozenset(path_values(db, prefix, env))

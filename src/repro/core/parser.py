"""Recursive-descent parser for the LyriC concrete syntax.

The grammar follows the paper's examples closely::

    SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
    FROM Office_Object CO
    WHERE CO.extent[E] and CO.translation[D]

    CREATE VIEW Overlap AS SUBCLASS OF Office_Object
    SELECT first = X, second = Y
    SIGNATURE first => Office_Object, second => Office_Object
    FROM Office_Object X, Office_Object Y
    OID FUNCTION OF X, Y
    WHERE X.extent[U] and Y.extent[V] and ((U and V))

Notable conventions:

* ``((x,y) | body)`` is a CST formula with an explicit head;
* a parenthesized formula body in WHERE (e.g. ``((L and 0 <= x))``) is
  the satisfiability predicate; ``SAT(body)`` is an explicit synonym;
* ``(lhs |= rhs)`` is the implication predicate;
* path selectors and heads are parsed as names; resolving which names
  are variables vs ground oids vs attribute names happens in
  :mod:`repro.core.semantics`.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core import ast
from repro.core.lexer import Token, tokenize
from repro.errors import LyricSyntaxError
from repro.model.oid import LiteralOid, Oid
from repro.model.paths import PathExpression, Step, VarRef

_RELOPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}
_NORMALIZED_RELOPS = {"==": "=", "<>": "!="}


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- plumbing -------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, value: str | None = None,
           ahead: int = 0) -> bool:
        token = self.peek(ahead)
        return token.kind == kind and (value is None
                                       or token.value == value)

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            wanted = value if value is not None else kind
            raise LyricSyntaxError(
                f"expected {wanted!r}, found {token.value or token.kind!r}",
                token.line, token.column)
        return self.next()

    def error(self, message: str) -> LyricSyntaxError:
        token = self.peek()
        return LyricSyntaxError(message, token.line, token.column)

    # -- entry points ---------------------------------------------------------

    def parse_statement(self):
        if self.at("kw", "create"):
            return self.parse_create_view()
        query = self.parse_query()
        self.expect("eof")
        return query

    def parse_create_view(self) -> ast.CreateView:
        self.expect("kw", "create")
        self.expect("kw", "view")
        name = self.expect("ident").value
        self.expect("kw", "as")
        self.expect("kw", "subclass")
        self.expect("kw", "of")
        superclass = self.parse_class_name()
        query, signature = self.parse_query(allow_signature=True,
                                            view_name=name)
        self.expect("eof")
        return ast.CreateView(name=name, superclass=superclass,
                              query=query, signature=tuple(signature))

    def parse_query(self, allow_signature: bool = False,
                    view_name: str | None = None):
        self.expect("kw", "select")
        select = [self.parse_select_item()]
        while self.accept("symbol", ","):
            select.append(self.parse_select_item())

        signature: list[ast.SignatureItem] = []
        if allow_signature and self.accept("kw", "signature"):
            signature.append(self.parse_signature_item())
            while self.accept("symbol", ","):
                signature.append(self.parse_signature_item())

        self.expect("kw", "from")
        from_items = [self.parse_from_item()]
        while self.accept("symbol", ","):
            from_items.append(self.parse_from_item())

        oid_function_of = None
        if self.at("kw", "oid"):
            self.next()
            self.expect("kw", "function")
            self.expect("kw", "of")
            oid_function_of = [self.expect("ident").value]
            while self.accept("symbol", ","):
                oid_function_of.append(self.expect("ident").value)

        where = None
        if self.accept("kw", "where"):
            where = self.parse_where()

        query = ast.Query(
            select=tuple(select),
            from_items=tuple(from_items),
            where=where,
            oid_function_of=tuple(oid_function_of)
            if oid_function_of else None,
            oid_function_name=view_name or "result")
        if allow_signature:
            return query, signature
        return query

    def parse_signature_item(self) -> ast.SignatureItem:
        name = self.expect("ident").value
        if self.accept("symbol", "=>>"):
            set_valued = True
        else:
            self.expect("symbol", "=>")
            set_valued = False
        target = self.parse_class_name()
        return ast.SignatureItem(name, target, set_valued)

    def parse_from_item(self) -> ast.FromItem:
        class_name = self.parse_class_name()
        var = self.expect("ident").value
        return ast.FromItem(class_name, var)

    def parse_class_name(self) -> str:
        name = self.expect("ident").value
        # Allow CST(2)-style class names.
        if name == "CST" and self.at("symbol", "("):
            self.next()
            dim = self.expect("number").value
            self.expect("symbol", ")")
            name = f"CST({dim})"
        return name

    # -- SELECT items -----------------------------------------------------------

    def parse_select_item(self) -> ast.SelectItem:
        name = None
        if self.at("ident") and self.at("symbol", "=", ahead=1):
            name = self.next().value
            self.next()
        return ast.SelectItem(self.parse_select_expr(), name)

    def parse_select_expr(self) -> ast.SelectExpr:
        token = self.peek()
        if token.kind == "kw" and token.value in (
                "max", "min", "max_point", "min_point"):
            return self.parse_optimize()
        if self.at("symbol", "(") and self.at("symbol", "(", ahead=1):
            return ast.FormulaOut(self.parse_projection_formula())
        return ast.PathOut(self.parse_path())

    def parse_optimize(self) -> ast.OptimizeOut:
        kind = ast.OptimizeKind[self.next().value.upper()]
        self.expect("symbol", "(")
        objective = self.parse_arith()
        self.expect("kw", "subject")
        self.expect("kw", "to")
        if self.at("symbol", "(") and self.at("symbol", "(", ahead=1):
            formula = self.parse_projection_formula()
        else:
            formula = ast.CstFormula(None, self.parse_formula_body())
        self.expect("symbol", ")")
        return ast.OptimizeOut(kind, objective, formula)

    # -- WHERE --------------------------------------------------------------------

    def parse_where(self) -> ast.Where:
        parts = [self.parse_where_and()]
        while self.accept("kw", "or"):
            parts.append(self.parse_where_and())
        if len(parts) == 1:
            return parts[0]
        return ast.WOr(tuple(parts))

    def parse_where_and(self) -> ast.Where:
        parts = [self.parse_where_unit()]
        while self.accept("kw", "and"):
            parts.append(self.parse_where_unit())
        if len(parts) == 1:
            return parts[0]
        return ast.WAnd(tuple(parts))

    def parse_where_unit(self) -> ast.Where:
        if self.accept("kw", "not"):
            return ast.WNot(self.parse_where_unit())
        if self.at("kw", "sat"):
            self.next()
            self.expect("symbol", "(")
            body = self.parse_formula_body()
            self.expect("symbol", ")")
            return ast.WSat(ast.CstFormula(None, body))
        if self.at("symbol", "(") and self.at("symbol", "(", ahead=1):
            # Could be a projection-form formula or nested parens.
            saved = self.pos
            try:
                formula = self.parse_projection_formula()
                return self.maybe_entailment(formula)
            except LyricSyntaxError:
                self.pos = saved
        if self.at("symbol", "("):
            saved = self.pos
            # Try boolean grouping first.
            try:
                self.next()
                inner = self.parse_where()
                self.expect("symbol", ")")
                return inner
            except LyricSyntaxError:
                self.pos = saved
            # Fall back to a parenthesized CST formula: satisfiability
            # predicate or the lhs of |=.
            self.next()
            body = self.parse_formula_body()
            if self.accept("symbol", "|="):
                rhs = self.parse_entailment_operand()
                self.expect("symbol", ")")
                return ast.WEntails(ast.CstFormula(None, body), rhs)
            self.expect("symbol", ")")
            formula = ast.CstFormula(None, body)
            if self.at("symbol", "|="):
                self.next()
                rhs = self.parse_entailment_operand()
                return ast.WEntails(formula, rhs)
            return ast.WSat(formula)
        return self.parse_comparison_or_path()

    def maybe_entailment(self, formula: ast.CstFormula) -> ast.Where:
        if self.accept("symbol", "|="):
            rhs = self.parse_entailment_operand()
            return ast.WEntails(formula, rhs)
        return ast.WSat(formula)

    def parse_entailment_operand(self) -> ast.CstFormula:
        if self.at("symbol", "(") and self.at("symbol", "(", ahead=1):
            saved = self.pos
            try:
                return self.parse_projection_formula()
            except LyricSyntaxError:
                self.pos = saved
        if self.accept("symbol", "("):
            body = self.parse_formula_body()
            self.expect("symbol", ")")
            return ast.CstFormula(None, body)
        return ast.CstFormula(None, self.parse_formula_body())

    def parse_comparison_or_path(self) -> ast.Where:
        left = self.parse_path_or_literal()
        token = self.peek()
        if token.kind == "symbol" and token.value in _RELOPS:
            op = _NORMALIZED_RELOPS.get(self.next().value,
                                        token.value)
            right = self.parse_path_or_literal()
            return ast.WCompare(left, op, right)
        if token.kind == "kw" and token.value in ("contains", "in"):
            self.next()
            right = self.parse_path_or_literal()
            return ast.WCompare(left, token.value, right)
        if isinstance(left, PathExpression):
            return ast.WPath(left)
        raise self.error("a literal is not a predicate")

    def parse_path_or_literal(self):
        token = self.peek()
        if token.kind == "param":
            self.next()
            return ast.Param(token.value)
        if token.kind == "string":
            self.next()
            return LiteralOid(token.value)
        if token.kind == "number":
            self.next()
            return LiteralOid(Fraction(token.value))
        if self.at("symbol", "-") and self.peek(1).kind == "number":
            self.next()
            return LiteralOid(-Fraction(self.next().value))
        return self.parse_path()

    # -- path expressions ------------------------------------------------------------

    def parse_path(self) -> PathExpression:
        head = VarRef(self.expect("ident").value)
        steps: list[Step] = []
        while self.accept("symbol", "."):
            attribute = VarRef(self.expect("ident").value)
            selector = None
            if self.accept("symbol", "["):
                selector = self.parse_selector()
                self.expect("symbol", "]")
            steps.append(Step(attribute, selector))
        return PathExpression(head, tuple(steps))

    def parse_selector(self):
        token = self.peek()
        if token.kind == "string":
            self.next()
            return LiteralOid(token.value)
        if token.kind == "number":
            self.next()
            return LiteralOid(Fraction(token.value))
        if self.at("symbol", "-") and self.peek(1).kind == "number":
            self.next()
            return LiteralOid(-Fraction(self.next().value))
        return VarRef(self.expect("ident").value)

    # -- CST formulas --------------------------------------------------------------------

    def parse_projection_formula(self) -> ast.CstFormula:
        self.expect("symbol", "(")
        self.expect("symbol", "(")
        head = [self.expect("ident").value]
        while self.accept("symbol", ","):
            head.append(self.expect("ident").value)
        self.expect("symbol", ")")
        self.expect("symbol", "|")
        body = self.parse_formula_body()
        self.expect("symbol", ")")
        return ast.CstFormula(tuple(head), body)

    def parse_formula_body(self) -> ast.Formula:
        parts = [self.parse_formula_conj()]
        while self.accept("kw", "or"):
            parts.append(self.parse_formula_conj())
        if len(parts) == 1:
            return parts[0]
        return ast.FOr(tuple(parts))

    def parse_formula_conj(self) -> ast.Formula:
        parts = [self.parse_formula_unit()]
        while self.accept("kw", "and"):
            parts.append(self.parse_formula_unit())
        if len(parts) == 1:
            return parts[0]
        return ast.FAnd(tuple(parts))

    def parse_formula_unit(self) -> ast.Formula:
        if self.accept("kw", "not"):
            return ast.FNot(self.parse_formula_unit())
        if self.accept("kw", "true"):
            return ast.FTrue()
        if self.accept("kw", "false"):
            return ast.FNot(ast.FTrue())
        if self.at("symbol", "("):
            saved = self.pos
            try:
                self.next()
                inner = self.parse_formula_body()
                self.expect("symbol", ")")
                if self.peek().kind == "symbol" \
                        and self.peek().value in _RELOPS:
                    raise self.error("arithmetic context")
                return inner
            except LyricSyntaxError:
                self.pos = saved
        return self.parse_ref_or_atom()

    def parse_ref_or_atom(self) -> ast.Formula:
        saved = self.pos
        ref = self.try_parse_ref()
        if ref is not None:
            return ref
        self.pos = saved
        return self.parse_atom_chain()

    def try_parse_ref(self) -> ast.FRef | None:
        """A constraint-object reference: NAME, NAME(args), path, or
        path(args) — recognized when *not* followed by a comparison."""
        if not self.at("ident"):
            return None
        path = self.parse_path()
        args: tuple[str, ...] | None = None
        if self.at("symbol", "("):
            # Only an identifier list in parens counts as ref arguments.
            saved = self.pos
            self.next()
            names = []
            ok = True
            if self.at("ident"):
                names.append(self.next().value)
                while self.accept("symbol", ","):
                    if not self.at("ident"):
                        ok = False
                        break
                    names.append(self.next().value)
            else:
                ok = False
            if ok and self.accept("symbol", ")"):
                args = tuple(names)
            else:
                self.pos = saved
                return None
        follower = self.peek()
        if follower.kind == "symbol" and follower.value in _RELOPS:
            return None
        if follower.kind == "symbol" and follower.value in (
                "+", "-", "*", "/"):
            return None
        source = path.head.name if not path.steps else path
        return ast.FRef(source, args)

    def parse_atom_chain(self) -> ast.Formula:
        left = self.parse_arith()
        token = self.peek()
        if not (token.kind == "symbol" and token.value in _RELOPS):
            raise self.error(
                f"expected a comparison operator in formula, found "
                f"{token.value or token.kind!r}")
        atoms: list[ast.Formula] = []
        while self.peek().kind == "symbol" \
                and self.peek().value in _RELOPS:
            op = _NORMALIZED_RELOPS.get(self.peek().value,
                                        self.peek().value)
            self.next()
            right = self.parse_arith()
            atoms.append(ast.FAtom(left, op, right))
            left = right
        if len(atoms) == 1:
            return atoms[0]
        return ast.FAnd(tuple(atoms))

    # -- arithmetic --------------------------------------------------------------------------

    def parse_arith(self) -> ast.Arith:
        negate = bool(self.accept("symbol", "-"))
        result = self.parse_term()
        if negate:
            result = ast.ANeg(result)
        while True:
            if self.accept("symbol", "+"):
                result = ast.ABinary("+", result, self.parse_term())
            elif self.accept("symbol", "-"):
                result = ast.ABinary("-", result, self.parse_term())
            else:
                return result

    def parse_term(self) -> ast.Arith:
        result = self.parse_factor()
        while True:
            if self.accept("symbol", "*"):
                result = ast.ABinary("*", result, self.parse_factor())
            elif self.accept("symbol", "/"):
                result = ast.ABinary("/", result, self.parse_factor())
            else:
                return result

    def parse_factor(self) -> ast.Arith:
        token = self.peek()
        if token.kind == "number":
            self.next()
            value = Fraction(token.value)
            if self.at("ident"):
                # Implicit multiplication "2x".
                return ast.ABinary(
                    "*", ast.ANum(value),
                    self.parse_factor())
            return ast.ANum(value)
        if token.kind == "param":
            self.next()
            return ast.AParam(token.value)
        if token.kind == "ident":
            path = self.parse_path()
            if not path.steps:
                return ast.AName(path.head.name)
            return ast.APath(path)
        if self.at("symbol", "("):
            self.next()
            inner = self.parse_arith()
            self.expect("symbol", ")")
            return inner
        if self.at("symbol", "-"):
            self.next()
            return ast.ANeg(self.parse_factor())
        raise self.error(
            f"expected a number, name or '(', found "
            f"{token.value or token.kind!r}")


def parse(text: str):
    """Parse a LyriC statement: a :class:`~repro.core.ast.Query` or a
    :class:`~repro.core.ast.CreateView`.

    The parser is recursive-descent, so adversarially nested input can
    exhaust the interpreter stack; that surfaces as a syntax error, not
    a bare :class:`RecursionError`.
    """
    try:
        return _Parser(text).parse_statement()
    except RecursionError:
        raise LyricSyntaxError(
            "query too deeply nested to parse") from None


def parse_query(text: str) -> ast.Query:
    result = parse(text)
    if not isinstance(result, ast.Query):
        raise LyricSyntaxError("expected a query, found a view definition")
    return result


def parse_view(text: str) -> ast.CreateView:
    result = parse(text)
    if not isinstance(result, ast.CreateView):
        raise LyricSyntaxError("expected a view definition")
    return result

"""An FP-style constraint algebra over collections of CST objects.

Section 5 of the paper sketches the "more sophisticated implementation"
it leaves to future work: *"a constraint algebra in which higher-order
operators manipulate collections of objects (e.g. sets, lists) some of
whose elements may be constraints.  Thus, the algebra is an FP-like
language [Bac78] in which functional forms capture common data
collections processing abstractions such as filtering elements, and
applying a function to all elements of a collection, and primitive
functions manipulate objects of different types such as intersecting
constraints."*

This module realizes that sketch:

* **primitive functions** on CST objects — ``intersect``, ``union_with``,
  ``project``, ``rename``, ``satisfiable``, ``entails``, ``overlaps``,
  ``bounding_box`` — curried so they compose;
* **functional forms** — ``Map``, ``Filter``, ``Fold``, ``Compose`` —
  over Python iterables of :class:`CSTObject`;
* **algebraic rewriting** — :func:`optimize` applies the classic fusion
  laws (``map f . map g = map (f . g)``,
  ``filter p . filter q = filter (p and q)``,
  ``filter p . map f = map f . filter (p . f)`` is *not* applied since
  predicates here are cheap relative to maps) so a pipeline makes one
  pass.

The algebra plugs into the data model through :func:`collect`, which
pulls a CST collection out of a class extent's attribute.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.constraints.cst_object import CSTObject
from repro.constraints.terms import Variable
from repro.model.database import Database

#: A unary primitive over CST objects.
CstFunction = Callable[[CSTObject], CSTObject]
CstPredicate = Callable[[CSTObject], bool]


# ---------------------------------------------------------------------------
# Primitive functions (curried constructors)
# ---------------------------------------------------------------------------


def intersect(other: CSTObject) -> CstFunction:
    """``intersect(B)(A) = A ∧ B`` (constraint conjunction)."""
    def fn(obj: CSTObject) -> CSTObject:
        return obj.intersect(other)
    fn.__name__ = "intersect"
    return fn


def union_with(other: CSTObject) -> CstFunction:
    def fn(obj: CSTObject) -> CSTObject:
        return obj.union(other)
    fn.__name__ = "union_with"
    return fn


def project(schema: Sequence[Variable | str]) -> CstFunction:
    resolved = [v if isinstance(v, Variable) else Variable(v)
                for v in schema]

    def fn(obj: CSTObject) -> CSTObject:
        return obj.project(resolved)
    fn.__name__ = "project"
    return fn


def rename(schema: Sequence[Variable | str]) -> CstFunction:
    resolved = [v if isinstance(v, Variable) else Variable(v)
                for v in schema]

    def fn(obj: CSTObject) -> CSTObject:
        return obj.rename(resolved)
    fn.__name__ = "rename"
    return fn


def satisfiable() -> CstPredicate:
    def fn(obj: CSTObject) -> bool:
        return obj.is_satisfiable()
    fn.__name__ = "satisfiable"
    return fn


def entails(rhs: CSTObject) -> CstPredicate:
    def fn(obj: CSTObject) -> bool:
        return obj.entails(rhs)
    fn.__name__ = "entails"
    return fn


def overlaps(other: CSTObject) -> CstPredicate:
    def fn(obj: CSTObject) -> bool:
        return obj.overlaps(other)
    fn.__name__ = "overlaps"
    return fn


def contains_point(*coordinates) -> CstPredicate:
    def fn(obj: CSTObject) -> bool:
        return obj.contains_point(*coordinates)
    fn.__name__ = "contains_point"
    return fn


# ---------------------------------------------------------------------------
# Functional forms
# ---------------------------------------------------------------------------


class Form:
    """A collection-to-collection (or collection-to-value) operator."""

    def __call__(self, collection: Iterable[CSTObject]):
        raise NotImplementedError

    def then(self, next_form: "Form") -> "Compose":
        """Left-to-right composition: ``a.then(b)`` runs ``a`` first."""
        return Compose((self, next_form))


class Map(Form):
    """Apply a primitive to every element."""

    def __init__(self, fn: CstFunction):
        self.fn = fn

    def __call__(self, collection):
        return [self.fn(obj) for obj in collection]

    def __repr__(self):
        return f"Map({getattr(self.fn, '__name__', 'fn')})"


class Filter(Form):
    """Keep elements satisfying a predicate."""

    def __init__(self, predicate: CstPredicate):
        self.predicate = predicate

    def __call__(self, collection):
        return [obj for obj in collection if self.predicate(obj)]

    def __repr__(self):
        return f"Filter({getattr(self.predicate, '__name__', 'p')})"


class Fold(Form):
    """Combine the collection with a binary constraint operation.

    ``Fold(lambda a, b: a.union(b))`` computes the union of the whole
    collection; an explicit ``initial`` handles the empty case.
    """

    def __init__(self, combine: Callable[[CSTObject, CSTObject],
                                         CSTObject],
                 initial: CSTObject | None = None):
        self.combine = combine
        self.initial = initial

    def __call__(self, collection):
        items = list(collection)
        if not items:
            if self.initial is None:
                raise ValueError("fold of an empty collection needs "
                                 "an initial value")
            return self.initial
        result = items[0] if self.initial is None else self.initial
        rest = items[1:] if self.initial is None else items
        for obj in rest:
            result = self.combine(result, obj)
        return result

    def __repr__(self):
        return "Fold(...)"


class Compose(Form):
    """Left-to-right pipeline of forms."""

    def __init__(self, forms: Sequence[Form]):
        flattened: list[Form] = []
        for form in forms:
            if isinstance(form, Compose):
                flattened.extend(form.forms)
            else:
                flattened.append(form)
        self.forms = tuple(flattened)

    def __call__(self, collection):
        result = collection
        for form in self.forms:
            result = form(result)
        return result

    def then(self, next_form: Form) -> "Compose":
        return Compose(self.forms + (next_form,))

    def __repr__(self):
        return " . ".join(repr(f) for f in self.forms)


# ---------------------------------------------------------------------------
# Algebraic rewriting: fusion
# ---------------------------------------------------------------------------


def optimize(form: Form) -> Form:
    """Fuse adjacent Maps and adjacent Filters so the pipeline makes a
    single pass per fused group (the classic FP/algebra laws the paper
    expects the optimizer to exploit)."""
    if not isinstance(form, Compose):
        return form
    fused: list[Form] = []
    for step in form.forms:
        if fused and isinstance(step, Map) \
                and isinstance(fused[-1], Map):
            first = fused.pop().fn
            second = step.fn

            def fn(obj, _f=first, _g=second):
                return _g(_f(obj))
            fn.__name__ = (f"{getattr(second, '__name__', 'g')}."
                           f"{getattr(first, '__name__', 'f')}")
            fused.append(Map(fn))
        elif fused and isinstance(step, Filter) \
                and isinstance(fused[-1], Filter):
            first = fused.pop().predicate
            second = step.predicate

            def pred(obj, _p=first, _q=second):
                return _p(obj) and _q(obj)
            pred.__name__ = (f"{getattr(first, '__name__', 'p')}&"
                             f"{getattr(second, '__name__', 'q')}")
            fused.append(Filter(pred))
        else:
            fused.append(step)
    if len(fused) == 1:
        return fused[0]
    return Compose(fused)


# ---------------------------------------------------------------------------
# Database bridge
# ---------------------------------------------------------------------------


def collect(db: Database, class_name: str, attribute: str,
            schema: Sequence[Variable | str] | None = None
            ) -> list[CSTObject]:
    """The CST values of ``attribute`` over the extent of
    ``class_name``, optionally renamed onto a common schema — the
    entry point that turns stored data into an algebra collection."""
    from repro.model.oid import CstOid
    resolved = None
    if schema is not None:
        resolved = [v if isinstance(v, Variable) else Variable(v)
                    for v in schema]
    out: list[CSTObject] = []
    for oid in db.extent(class_name):
        for value in db.attribute_values(oid, attribute):
            if isinstance(value, CstOid):
                cst = value.cst
                if resolved is not None:
                    cst = cst.rename(resolved)
                out.append(cst)
    return out

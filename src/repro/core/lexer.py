"""Tokenizer for the LyriC concrete syntax.

Keywords are case-insensitive (``SELECT``/``select``); identifiers keep
their case.  The token stream carries line/column positions for error
messages.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import LyricSyntaxError

KEYWORDS = {
    "select", "from", "where", "and", "or", "not",
    "create", "view", "as", "subclass", "of",
    "signature", "oid", "function",
    "max", "min", "max_point", "min_point", "subject", "to",
    "sat", "contains", "in", "true", "false", "exists",
}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<symbol>\|=|=>>|=>|<=|>=|==|!=|<>|[-+*/().,\[\]|=<>])
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str  # 'kw', 'ident', 'number', 'string', 'param', 'symbol', 'eof'
    value: str
    line: int
    column: int

    def __str__(self):
        return self.value or self.kind


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise LyricSyntaxError(
                f"unexpected character {text[pos]!r}",
                line, pos - line_start + 1)
        kind = match.lastgroup
        value = match.group()
        column = pos - line_start + 1
        pos = match.end()
        if kind in ("ws", "comment"):
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos - len(value) + value.rfind("\n") + 1
            continue
        if kind == "ident" and value.lower() in KEYWORDS:
            tokens.append(Token("kw", value.lower(), line, column))
        elif kind == "param":
            # Parameter tokens carry the bare name, '$' stripped.
            tokens.append(Token("param", value[1:], line, column))
        elif kind == "string":
            inner = value[1:-1].replace("\\'", "'").replace("\\\\", "\\")
            tokens.append(Token("string", inner, line, column))
        else:
            tokens.append(Token(kind, value, line, column))
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens

"""Translation of LyriC queries into flat SQL with constraints
(Section 5).

The naive implementation the paper sketches: flatten all path
expressions into joins over the class-extent and attribute relations of
:func:`repro.model.relations.flatten`, turn WHERE predicates into flat
selections (constraint predicates become closures over the constraint
engine), and compute SELECT-clause CST formulas as extended columns.

The translated plan is executed by :func:`repro.sqlc.engine.execute`,
optionally through the optimizer — giving a second, independent
evaluation path that the tests differential-check against the naive
evaluator.

Supported fragment: conjunctive binding skeletons with variable or
ground heads and attribute *names* (attribute variables need the
object-level evaluator), arbitrary boolean WHERE combinations of
comparisons and CST predicates over bound variables, and all SELECT
expression forms.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.constraints.terms import Variable
from repro.core import ast, formulas
from repro.core.parser import parse_query
from repro.core.result import ResultSet
from repro.core.semantics import AnalyzedQuery, analyze
from repro.errors import SemanticError
from repro.model.database import Database
from repro.model.oid import CstOid, FunctionalOid, Oid
from repro.model.paths import PathExpression, VarRef
from repro.model.relations import (
    attribute_relation_name,
    extent_relation_name,
    flatten,
)
from repro.runtime import context as context_mod
from repro.runtime.context import QueryContext, bound_db
from repro.sqlc import algebra, engine


class TranslationError(SemanticError):
    """The query uses a feature outside the translatable fragment."""


# Plans are database-free: the closures compiled below resolve the
# database through :func:`repro.runtime.context.bound_db` at evaluation
# time (the pipeline's bind step sets ``ctx.db``), keeping the
# translate-time database only as a fallback for direct ``translate()``
# + ``plan.evaluate()`` callers.  This is what makes a compiled plan
# cacheable and reusable across databases sharing a schema.


@dataclass
class TranslatedQuery:
    plan: algebra.Plan
    columns: tuple[str, ...]
    #: Column holding the minted row oid, when OID FUNCTION OF is used.
    oid_column: str | None = None


def translate(db: Database, query: ast.Query | str) -> TranslatedQuery:
    if isinstance(query, str):
        query = parse_query(query)
    analysis = analyze(db.schema, query)
    return translate_analyzed(db, analysis)


def translate_analyzed(db: Database, analysis: AnalyzedQuery
                       ) -> TranslatedQuery:
    """Translate an already-analyzed query (the pipeline's translate
    phase; :func:`translate` wraps it for one-shot callers)."""
    return _Translator(db, analysis).translate()


def run_translated(db: Database, query: ast.Query | str,
                   use_optimizer: bool = True,
                   stats: engine.ExecutionStats | None = None,
                   ctx: QueryContext | None = None
                   ) -> ResultSet:
    """Translate, execute on the flat catalog, and re-package rows into
    a :class:`ResultSet` comparable with the naive evaluator's.

    A thin wrapper over :class:`repro.core.pipeline.Pipeline`; the
    optional ``stats`` object is reset and receives the execution's
    account (including the per-phase trace)."""
    from repro.core.pipeline import Pipeline
    base = context_mod.resolve(ctx)
    overrides: dict = {"use_optimizer": use_optimizer}
    if stats is not None:
        stats.reset()
        overrides["stats"] = stats
    elif ctx is None:
        # No explicit context: fresh account so repeated calls do not
        # grow the ambient context's stats without bound.
        overrides["stats"] = engine.ExecutionStats()
    return Pipeline(db, base.derive(**overrides)).run(query)


class _Translator:
    def __init__(self, db: Database, analysis: AnalyzedQuery):
        self.db = db
        self.analysis = analysis
        self.query = analysis.query
        self._fresh = itertools.count()

    def fresh_column(self) -> str:
        return f"_p{next(self._fresh)}"

    # -- main ------------------------------------------------------------

    def translate(self) -> TranslatedQuery:
        plans: list[algebra.Plan] = []
        for item in self.query.from_items:
            scan = algebra.Scan(extent_relation_name(item.class_name),
                                ("oid",))
            plans.append(algebra.Rename(scan, (("oid", item.var),)))

        for path in self.analysis.skeleton:
            plans.extend(self.flatten_path(path))
        residual = self.collect_residual(self.query.where)

        plan = plans[0]
        for part in plans[1:]:
            plan = algebra.NaturalJoin(plan, part)

        predicate = self.compile_where_parts(residual)
        if predicate is not None:
            plan = algebra.Select(plan, predicate)

        # SELECT items become output columns (possibly computed).
        out_columns: list[str] = []
        for i, item in enumerate(self.query.select):
            column, plan = self.compile_select_item(item, i, plan)
            out_columns.append(column)

        oid_column = None
        if self.query.oid_function_of:
            oid_column = "_rowoid"
            names = self.query.oid_function_of
            fn = self.query.oid_function_name

            def mint(row, _names=names, _fn=fn):
                return FunctionalOid(_fn, [row[n] for n in _names])

            plan = algebra.Extend(plan, oid_column, mint, "oid-function")

        kept = tuple(out_columns) + ((oid_column,) if oid_column else ())
        plan = algebra.Distinct(algebra.Project(plan, kept))
        return TranslatedQuery(plan, tuple(out_columns), oid_column)

    # -- path flattening -------------------------------------------------------

    def flatten_path(self, path: PathExpression,
                     value_column: str | None = None
                     ) -> list[algebra.Plan]:
        """One plan fragment per step, joined by shared column names.

        The tail value lands in ``value_column`` (or the final
        selector's variable name / a fresh name).
        """
        plans: list[algebra.Plan] = []
        head = path.head
        if isinstance(head, VarRef):
            current = head.name
            ground: Oid | None = None
        else:
            current = self.fresh_column()
            ground = head
        if not path.steps and ground is not None:
            raise TranslationError(
                "a ground trivial path needs no translation")

        for index, step in enumerate(path.steps):
            if not isinstance(step.attribute, str):
                raise TranslationError(
                    "attribute variables are outside the translatable "
                    "fragment; use the naive evaluator")
            last = index == len(path.steps) - 1
            if isinstance(step.selector, VarRef):
                next_col = step.selector.name
                literal = None
            elif step.selector is not None:
                next_col = self.fresh_column()
                literal = step.selector
            else:
                next_col = (value_column if last and value_column
                            else self.fresh_column())
                literal = None

            scan = algebra.Scan(
                attribute_relation_name(step.attribute),
                ("oid", "value"))
            fragment: algebra.Plan = algebra.Rename(
                scan, (("oid", current), ("value", next_col)))
            if ground is not None:
                fragment = algebra.Select(
                    fragment, algebra.ColumnLiteral(current, ground))
                ground = None
            if literal is not None:
                fragment = algebra.Select(
                    fragment, algebra.ColumnLiteral(next_col, literal))
            plans.append(fragment)
            current = next_col
        return plans

    # -- WHERE residue -----------------------------------------------------------

    def collect_residual(self, node: ast.Where | None) -> list[ast.Where]:
        """WHERE parts other than the skeleton paths (which became
        joins)."""
        if node is None:
            return []
        if isinstance(node, ast.WAnd):
            out: list[ast.Where] = []
            for part in node.parts:
                out.extend(self.collect_residual(part))
            return out
        if isinstance(node, ast.WPath):
            return []  # skeleton, already joined
        return [node]

    def compile_where_parts(self, parts: list[ast.Where]
                            ) -> algebra.Predicate | None:
        predicates = [self.compile_predicate(p) for p in parts]
        if not predicates:
            return None
        if len(predicates) == 1:
            return predicates[0]
        return algebra.And(tuple(predicates))

    def compile_predicate(self, node: ast.Where) -> algebra.Predicate:
        if isinstance(node, ast.WAnd):
            return algebra.And(tuple(self.compile_predicate(p)
                                     for p in node.parts))
        if isinstance(node, ast.WOr):
            return algebra.Or(tuple(self.compile_predicate(p)
                                    for p in node.parts))
        if isinstance(node, ast.WNot):
            return algebra.Not(self.compile_predicate(node.part))
        if isinstance(node, ast.WCompare):
            return self.compile_compare(node)
        if isinstance(node, ast.WSat):
            return self.compile_cst(node.formula, kind="sat")
        if isinstance(node, ast.WEntails):
            return self.compile_entails(node)
        if isinstance(node, ast.WPath):
            raise TranslationError(
                "path predicates under disjunction or negation are "
                "outside the translatable fragment")
        raise TranslationError(f"cannot translate {node!r}")

    def compile_compare(self, node: ast.WCompare) -> algebra.Predicate:
        """Comparisons over bare variables become flat column
        predicates; comparisons involving multi-step paths compile to
        closures over the evaluator's comparison semantics (so both
        evaluation paths agree exactly, including under negation)."""
        left = self.simple_column(node.left)
        right = self.simple_column(node.right)
        if left is not None and right is not None and node.op == "=":
            if isinstance(right, Oid):
                if isinstance(left, Oid):
                    raise TranslationError(
                        "constant comparison needs no translation")
                return algebra.ColumnLiteral(left, right)
            if isinstance(left, Oid):
                return algebra.ColumnLiteral(right, left)
            return algebra.ColumnEq(left, right)
        if left is not None and right is not None and node.op == "!=":
            return algebra.Not(self.compile_compare(
                ast.WCompare(node.left, "=", node.right)))

        columns = tuple(dict.fromkeys(
            self.operand_variables(node.left)
            + self.operand_variables(node.right)))
        db = self.db

        def test(*values, _cols=columns, _node=node):
            from repro.core.evaluator import compare
            env = dict(zip(_cols, values))
            return compare(bound_db(db), _node, env)

        return algebra.CstPredicate(columns, test, f"compare:{node.op}")

    def simple_column(self, operand):
        """A bare variable's column name or a literal oid; None for
        multi-step paths."""
        if isinstance(operand, Oid):
            return operand
        if isinstance(operand, PathExpression) and not operand.steps \
                and isinstance(operand.head, VarRef):
            return operand.head.name
        return None

    def operand_variables(self, operand) -> tuple[str, ...]:
        if not isinstance(operand, PathExpression):
            return ()
        names: list[str] = []
        head = operand.head
        if isinstance(head, VarRef):
            names.append(head.name)
        for step in operand.steps:
            if isinstance(step.selector, VarRef) \
                    and step.selector.name not in names:
                names.append(step.selector.name)
        return tuple(names)

    # -- CST predicates ----------------------------------------------------------------

    def formula_variables(self, formula: ast.CstFormula) -> tuple[str, ...]:
        """Query variables the formula depends on (= columns the
        CstPredicate needs)."""
        names: list[str] = []

        def visit(node: ast.Formula) -> None:
            if isinstance(node, ast.FRef):
                if isinstance(node.source, str):
                    if node.source not in names:
                        names.append(node.source)
                else:
                    head = node.source.head
                    if isinstance(head, VarRef) \
                            and head.name not in names:
                        names.append(head.name)
            elif isinstance(node, (ast.FAnd, ast.FOr)):
                for part in node.parts:
                    visit(part)
            elif isinstance(node, ast.FNot):
                visit(node.part)
            elif isinstance(node, ast.FAtom):
                for side in (node.left, node.right):
                    self._arith_vars(side, names)

        visit(formula.body)
        return tuple(names)

    def _arith_vars(self, node: ast.Arith, names: list[str]) -> None:
        if isinstance(node, ast.AName):
            if node.name in self.analysis.var_info \
                    and node.name not in names:
                names.append(node.name)
        elif isinstance(node, ast.APath):
            head = node.path.head
            if isinstance(head, VarRef) and head.name not in names:
                names.append(head.name)
        elif isinstance(node, ast.ABinary):
            self._arith_vars(node.left, names)
            self._arith_vars(node.right, names)
        elif isinstance(node, ast.ANeg):
            self._arith_vars(node.operand, names)

    def compile_cst(self, formula: ast.CstFormula,
                    kind: str) -> algebra.Predicate:
        columns = self.formula_variables(formula)
        db, analysis = self.db, self.analysis

        def test(*values, _cols=columns):
            env = dict(zip(_cols, values))
            return formulas.satisfiable(bound_db(db), analysis,
                                        formula, env)

        conjunction = None
        if formula.head is None:
            # Unprojected SAT formulas are exactly "the instantiated
            # body is satisfiable", so the batched numeric kernel can
            # classify the instantiated constraint directly.  (A
            # projection head changes the object tested, not its
            # emptiness — but keep heads on the exact path, where the
            # row-wise test builds them.)
            def conjunction(*values, _cols=columns):
                env = dict(zip(_cols, values))
                return formulas.instantiate_formula(
                    bound_db(db), analysis, formula, env)

        return algebra.CstPredicate(columns, test, "SAT",
                                    self._conjunct_boxers(formula),
                                    conjunction)

    def _conjunct_boxers(self, formula: ast.CstFormula
                         ) -> tuple[tuple[str, object], ...]:
        """Bounding-box functions for the bare-variable references on
        the formula body's conjunctive spine — the
        :attr:`~repro.sqlc.algebra.CstPredicate.boxers` of a SAT
        predicate.

        Soundness of the pairwise-intersective contract: every spine
        reference's constraint is *conjoined* into the instantiated
        body (implicit edge equalities only add further conjuncts, and
        a projection head preserves emptiness), so if the cheap boxes
        of two spine references are disjoint on a shared formula
        variable, their conjunction — hence the whole body — is
        unsatisfiable.  References under ``or``/``not`` are not on the
        spine and get no boxer.  Each boxer mirrors the positional
        renaming of :func:`repro.core.formulas._ref_constraint`
        (stored schema -> declared spec variables -> explicit
        arguments), returning the unknown box ``{}`` whenever the exact
        path could behave differently (non-CST cell, dimension
        mismatch) so those rows always reach the exact test.
        """
        refs: list[ast.FRef] = []

        def spine(node: ast.Formula) -> None:
            if isinstance(node, ast.FAnd):
                for part in node.parts:
                    spine(part)
            elif isinstance(node, ast.FRef) \
                    and isinstance(node.source, str):
                refs.append(node)

        spine(formula.body)
        boxers: dict[str, object] = {}
        for ref in refs:
            if ref.source in boxers:
                continue
            info = self.analysis.ref_info.get(ref)
            spec_variables = info.spec.variables \
                if info is not None and info.spec is not None else None
            args = tuple(ref.args) if ref.args is not None else None
            boxers[ref.source] = _ref_boxer(spec_variables, args)
        return tuple(sorted(boxers.items()))

    def compile_entails(self, node: ast.WEntails) -> algebra.Predicate:
        columns = tuple(dict.fromkeys(
            self.formula_variables(node.left)
            + self.formula_variables(node.right)))
        db, analysis = self.db, self.analysis

        def test(*values, _cols=columns):
            env = dict(zip(_cols, values))
            return formulas.entails(bound_db(db), analysis, node.left,
                                    node.right, env)

        return algebra.CstPredicate(columns, test, "|=")

    # -- SELECT ------------------------------------------------------------------------

    def compile_select_item(self, item: ast.SelectItem, index: int,
                            plan: algebra.Plan
                            ) -> tuple[str, algebra.Plan]:
        expr = item.expr
        if isinstance(expr, ast.PathOut):
            if not expr.path.steps and isinstance(expr.path.head, VarRef):
                name = expr.path.head.name
                if name not in plan.columns:
                    raise TranslationError(
                        f"SELECT variable {name!r} is not bound by the "
                        "translated joins")
                return name, plan
            raise TranslationError(
                "multi-step SELECT paths are outside the translatable "
                "fragment; bind the value with a selector variable")
        column = item.name or f"expr{index}"
        db, analysis = self.db, self.analysis
        if isinstance(expr, ast.FormulaOut):
            needed = self.formula_variables(expr.formula)
            formula = expr.formula

            def compute(row, _needed=needed, _formula=formula):
                from repro.model.oid import CstOid
                env = {n: row[n] for n in _needed}
                return CstOid(formulas.formula_to_cst(
                    bound_db(db), analysis, _formula, env))

            return column, algebra.Extend(plan, column, compute,
                                          "cst-formula")
        if isinstance(expr, ast.OptimizeOut):
            needed = tuple(dict.fromkeys(
                self.formula_variables(expr.formula)))
            opt = expr

            def compute_opt(row, _needed=needed, _opt=opt):
                env = {n: row[n] for n in _needed}
                return formulas.optimize(bound_db(db), analysis, _opt,
                                         env)

            return column, algebra.Extend(plan, column, compute_opt,
                                          opt.kind.value)
        raise TranslationError(f"cannot translate SELECT item {item!r}")


def _ref_boxer(spec_variables, args):
    """A boxer (cell -> box, conventions of :mod:`repro.sqlc.index`)
    for one bare-variable constraint reference, mirroring the
    positional renaming chain of formula instantiation: the stored CST
    schema is renamed onto the attribute's declared ``spec_variables``
    (when any), then onto the explicit ``args`` (when any).  Any cell
    the exact path would reject or rename differently maps to the
    unknown box ``{}``, which never prunes."""

    def boxer(cell):
        if not isinstance(cell, CstOid):
            return {}
        try:
            cst = cell.cst
            schema = cst.schema
            target = list(schema)
            if spec_variables is not None:
                if len(spec_variables) != len(schema):
                    return {}
                target = list(spec_variables)
            if args is not None:
                if len(args) != len(schema):
                    return {}
                target = [Variable(a) for a in args]
            box = cst.cheap_box()
        except Exception:
            return {}
        if box is None:
            return None
        return {t: box[s] for s, t in zip(schema, target) if s in box}

    return boxer

"""Abstract syntax of LyriC queries (Section 4.2).

The AST separates three sub-languages:

* **path expressions** — reused from :mod:`repro.model.paths`;
* **CST formulas** — constraint formulas over constraint variables,
  constraint-object references and pseudo-linear arithmetic (which may
  embed path expressions that instantiate to numeric constants);
* **queries** — SELECT/FROM/WHERE with OID FUNCTION OF, plus
  CREATE VIEW ... AS SUBCLASS OF.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from repro.model.oid import Oid
from repro.model.paths import PathExpression

# ---------------------------------------------------------------------------
# Arithmetic inside pseudo-linear formulas
# ---------------------------------------------------------------------------


class Arith:
    """Base of arithmetic terms (pseudo-linear: linear once every path
    expression and bound object variable is instantiated)."""


@dataclass(frozen=True)
class ANum(Arith):
    value: Fraction

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class AName(Arith):
    """An identifier: a constraint variable, or an object variable bound
    to a numeric literal (decided during instantiation)."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class AParam(Arith):
    """A query parameter ``$name`` in arithmetic position.  It must be
    bound to a numeric constant at execution time; compiled plans keep
    the slot symbolic so one plan serves every binding."""

    name: str

    def __str__(self):
        return f"${self.name}"


@dataclass(frozen=True)
class APath(Arith):
    """A path expression that must instantiate to a numeric constant."""

    path: PathExpression

    def __str__(self):
        return str(self.path)


@dataclass(frozen=True)
class ABinary(Arith):
    op: str  # '+', '-', '*', '/'
    left: Arith
    right: Arith

    def __str__(self):
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class ANeg(Arith):
    operand: Arith

    def __str__(self):
        return f"-({self.operand})"


# ---------------------------------------------------------------------------
# CST formulas
# ---------------------------------------------------------------------------


class Formula:
    """Base of CST formula nodes."""


@dataclass(frozen=True)
class FAtom(Formula):
    """A pseudo-linear comparison ``left relop right``."""

    left: Arith
    relop: str  # one of '=', '!=', '<', '<=', '>', '>='
    right: Arith

    def __str__(self):
        return f"{self.left} {self.relop} {self.right}"


@dataclass(frozen=True)
class FRef(Formula):
    """A constraint-object reference ``O`` or ``O(x1..xn)``.

    ``source`` is a variable name or a path expression denoting a CST
    object; ``args`` optionally renames its variable schema
    positionally (Section 4.2: "if the variables are not specified,
    they are simply copied from the schema").
    """

    source: Union[str, PathExpression]
    args: tuple[str, ...] | None = None

    def __str__(self):
        base = str(self.source)
        if self.args is not None:
            base += f"({','.join(self.args)})"
        return base


@dataclass(frozen=True)
class FAnd(Formula):
    parts: tuple[Formula, ...]

    def __str__(self):
        return " and ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class FOr(Formula):
    parts: tuple[Formula, ...]

    def __str__(self):
        return " or ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class FNot(Formula):
    part: Formula

    def __str__(self):
        return f"not ({self.part})"


@dataclass(frozen=True)
class FTrue(Formula):
    def __str__(self):
        return "true"


@dataclass(frozen=True)
class CstFormula:
    """A formula with an optional projection head ``((x1..xn) | body)``.

    Without a head the formula is used as a predicate (satisfiability);
    with a head it denotes an n-dimensional CST object.
    """

    head: tuple[str, ...] | None
    body: Formula

    def __str__(self):
        if self.head is None:
            return str(self.body)
        return f"(({','.join(self.head)}) | {self.body})"


# ---------------------------------------------------------------------------
# SELECT clause items
# ---------------------------------------------------------------------------


class OptimizeKind(enum.Enum):
    MAX = "MAX"
    MIN = "MIN"
    MAX_POINT = "MAX_POINT"
    MIN_POINT = "MIN_POINT"


class SelectExpr:
    """Base of SELECT-clause expressions."""


@dataclass(frozen=True)
class PathOut(SelectExpr):
    """A scalar path expression (a bare variable is a trivial path)."""

    path: PathExpression

    def __str__(self):
        return str(self.path)


@dataclass(frozen=True)
class FormulaOut(SelectExpr):
    """A disjunctive existential formula creating a new CST object."""

    formula: CstFormula

    def __str__(self):
        return str(self.formula)


@dataclass(frozen=True)
class OptimizeOut(SelectExpr):
    """``MAX/MIN/MAX_POINT/MIN_POINT(f SUBJECT TO formula)``."""

    kind: OptimizeKind
    objective: Arith
    formula: CstFormula

    def __str__(self):
        return (f"{self.kind.value}({self.objective} SUBJECT TO "
                f"{self.formula})")


@dataclass(frozen=True)
class SelectItem:
    expr: SelectExpr
    name: str | None = None

    def __str__(self):
        if self.name:
            return f"{self.name} = {self.expr}"
        return str(self.expr)


# ---------------------------------------------------------------------------
# WHERE clause
# ---------------------------------------------------------------------------


class Where:
    """Base of WHERE-clause nodes."""


@dataclass(frozen=True)
class Param:
    """A query parameter ``$name`` in comparison-operand position.
    Resolved to an oid from the active context's bindings at execution
    time, never at compile time — the parameter slot is what lets a
    cached plan serve all bindings."""

    name: str

    def __str__(self):
        return f"${self.name}"


@dataclass(frozen=True)
class WPath(Where):
    """A path expression used as a boolean predicate (true iff some
    database path satisfies a ground instance)."""

    path: PathExpression

    def __str__(self):
        return str(self.path)


@dataclass(frozen=True)
class WCompare(Where):
    """Comparison of path-expression values (sets of tail objects)."""

    left: Union[PathExpression, Oid, "Param"]
    op: str  # '=', '!=', '<', '<=', '>', '>=', 'contains', 'in'
    right: Union[PathExpression, Oid, "Param"]

    def __str__(self):
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class WSat(Where):
    """The satisfiability predicate: a CST formula used as a boolean."""

    formula: CstFormula

    def __str__(self):
        return f"SAT({self.formula})"


@dataclass(frozen=True)
class WEntails(Where):
    """The implication predicate ``formula |= formula``."""

    left: CstFormula
    right: CstFormula

    def __str__(self):
        return f"{self.left} |= {self.right}"


@dataclass(frozen=True)
class WAnd(Where):
    parts: tuple[Where, ...]

    def __str__(self):
        return " and ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class WOr(Where):
    parts: tuple[Where, ...]

    def __str__(self):
        return " or ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class WNot(Where):
    part: Where

    def __str__(self):
        return f"not ({self.part})"


# ---------------------------------------------------------------------------
# Queries and views
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FromItem:
    class_name: str
    var: str

    def __str__(self):
        return f"{self.class_name} {self.var}"


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]
    from_items: tuple[FromItem, ...]
    where: Where | None = None
    oid_function_of: tuple[str, ...] | None = None
    oid_function_name: str = "result"

    def __str__(self):
        text = "SELECT " + ", ".join(str(s) for s in self.select)
        text += "\nFROM " + ", ".join(str(f) for f in self.from_items)
        if self.oid_function_of:
            text += "\nOID FUNCTION OF " + ", ".join(self.oid_function_of)
        if self.where is not None:
            text += f"\nWHERE {self.where}"
        return text


@dataclass(frozen=True)
class SignatureItem:
    """One ``attr => Class`` (scalar) or ``attr =>> Class`` (set-valued)
    declaration in a view's SIGNATURE clause."""

    name: str
    target: str
    set_valued: bool = False

    def __str__(self):
        arrow = "=>>" if self.set_valued else "=>"
        return f"{self.name} {arrow} {self.target}"


@dataclass(frozen=True)
class CreateView:
    """``CREATE VIEW name AS SUBCLASS OF super SELECT ...``.

    When ``name`` is one of the query's variables the view is
    *parameterized*: one subclass is created per binding of that
    variable (the paper's Region classification example).
    """

    name: str
    superclass: str
    query: Query
    signature: tuple[SignatureItem, ...] = ()

    def __str__(self):
        text = (f"CREATE VIEW {self.name} AS SUBCLASS OF "
                f"{self.superclass}\n{self.query}")
        if self.signature:
            text += "\nSIGNATURE " + ", ".join(
                str(s) for s in self.signature)
        return text

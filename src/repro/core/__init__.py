"""The LyriC query language: parser, semantics, evaluator, views, and
the Section 5 translation to flat SQL with constraints."""

from repro.core import ast
from repro.core.evaluator import evaluate
from repro.core.parser import parse, parse_query, parse_view
from repro.core.result import ResultRow, ResultSet
from repro.core.semantics import AnalyzedQuery, analyze
from repro.core.translator import TranslationError, run_translated, translate
from repro.core.views import ViewResult, create_view

__all__ = [
    "AnalyzedQuery",
    "ResultRow",
    "ResultSet",
    "TranslationError",
    "ViewResult",
    "analyze",
    "ast",
    "create_view",
    "evaluate",
    "parse",
    "parse_query",
    "parse_view",
    "run_translated",
    "translate",
]

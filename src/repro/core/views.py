"""Views: ``CREATE VIEW ... AS SUBCLASS OF ...`` (Sections 2.2 and 4.1).

A view executes its query and materializes the result as a new class:

* **plain views** (the paper's ``Overlap`` example) — one new class
  named by the view; each result tuple becomes an instance whose oid is
  produced by the ``OID FUNCTION OF`` clause and whose attributes are
  the named SELECT items, typed by the SIGNATURE clause;
* **parameterized views** (the paper's ``Region`` classification
  example: ``CREATE VIEW X AS ...`` where ``X`` is a query variable) —
  one new subclass per distinct binding of the parameter.  Instances of
  each class are the values of the remaining SELECT columns.  Class
  names derive from the parameter's ``region_name``/``name`` attribute
  when available, else from a running index.

The paper's own example selects only the class parameter; for the
instances to be meaningful a parameterized view here should also select
the member objects (``SELECT X, Y ...``) — a deliberate, documented
tightening of the paper's (underspecified) example.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core import ast
from repro.core.evaluator import evaluate_analyzed
from repro.core.parser import parse_view
from repro.core.result import ResultSet
from repro.core.semantics import analyze
from repro.errors import SemanticError
from repro.model.database import Database
from repro.model.oid import FunctionalOid, LiteralOid, Oid
from repro.model.schema import AttributeDef, ClassDef
from repro.runtime.context import QueryContext


@dataclass
class ViewResult:
    """What materializing a view created."""

    classes: list[str] = field(default_factory=list)
    instances: dict[str, list[Oid]] = field(default_factory=dict)
    #: For parameterized views: class name -> parameter oid.
    parameters: dict[str, Oid] = field(default_factory=dict)


def create_view(db: Database, view: ast.CreateView | str,
                ctx: QueryContext | None = None) -> ViewResult:
    """Execute and materialize a view definition.

    The view's query runs under ``ctx`` (ambient context when not
    given), so guard budgets, cancellation, and degrade policy apply to
    view materialization exactly as to queries."""
    if isinstance(view, str):
        view = parse_view(view)
    analysis = analyze(db.schema, view.query)

    param_index = _parameter_index(view, analysis)
    rows = evaluate_analyzed(db, analysis, ctx=ctx)

    if param_index is None:
        return _materialize_plain(db, view, rows)
    return _materialize_parameterized(db, view, rows, param_index)


def _parameter_index(view: ast.CreateView, analysis) -> int | None:
    """Column index of the class parameter, when the view name is one of
    the query's variables selected as a bare path."""
    if view.name not in analysis.var_info:
        return None
    for i, item in enumerate(view.query.select):
        expr = item.expr
        if isinstance(expr, ast.PathOut) and not expr.path.steps \
                and getattr(expr.path.head, "name", None) == view.name:
            return i
    raise SemanticError(
        f"parameterized view {view.name!r}: the parameter variable must "
        "appear as a SELECT item")


def _materialize_plain(db: Database, view: ast.CreateView,
                       rows: ResultSet) -> ViewResult:
    class_def = _define_view_class(db, view.name, view)
    result = ViewResult(classes=[view.name],
                        instances={view.name: []})
    for index, row in enumerate(rows):
        oid = row.oid or FunctionalOid(view.name,
                                       [LiteralOid(index)] if not
                                       row.values else row.values)
        values = _signature_values(view, rows.columns, row)
        db.add_object(oid, view.name, values)
        result.instances[view.name].append(oid)
    return result


def _materialize_parameterized(db: Database, view: ast.CreateView,
                               rows: ResultSet,
                               param_index: int) -> ViewResult:
    result = ViewResult()
    groups: dict[Oid, list] = {}
    for row in rows:
        groups.setdefault(row.values[param_index], []).append(row)

    for counter, (param, group) in enumerate(groups.items()):
        class_name = _parameter_class_name(db, view, param, counter)
        _define_view_class(db, class_name, view)
        result.classes.append(class_name)
        result.parameters[class_name] = param
        members: list[Oid] = []
        for row in group:
            others = [v for i, v in enumerate(row.values)
                      if i != param_index]
            if len(others) == 1:
                member_oid = others[0]
                if member_oid in db:
                    # Re-classify an existing object: record membership
                    # via a fresh view instance referencing it.
                    instance = FunctionalOid(class_name, [member_oid])
                    db.add_object(instance, class_name,
                                  {"member": member_oid})
                    members.append(member_oid)
                    continue
                db.add_object(member_oid, class_name, {})
                members.append(member_oid)
            else:
                oid = row.oid or FunctionalOid(class_name, row.values)
                values = _signature_values(view, rows.columns, row)
                db.add_object(oid, class_name, values)
                members.append(oid)
        result.instances[class_name] = members
    return result


def _define_view_class(db: Database, class_name: str,
                       view: ast.CreateView) -> ClassDef:
    if db.schema.has_class(class_name):
        raise SemanticError(f"view class {class_name!r} already exists")
    attributes = [
        AttributeDef(sig.name, sig.target, set_valued=sig.set_valued)
        for sig in view.signature]
    if view.name in {v.var for v in view.query.from_items} \
            and not any(a.name == "member" for a in attributes):
        attributes.append(AttributeDef("member", view.superclass))
    return db.schema.define(
        class_name, parents=(view.superclass,), attributes=attributes)


def _signature_values(view: ast.CreateView, columns: tuple[str, ...],
                      row) -> dict:
    declared = {sig.name for sig in view.signature}
    values = {}
    for name, value in zip(columns, row.values):
        if name in declared:
            values[name] = value
    return values


def _parameter_class_name(db: Database, view: ast.CreateView,
                          param: Oid, counter: int) -> str:
    for attr in ("region_name", "name"):
        for value in db.attribute_values(param, attr):
            if isinstance(value, LiteralOid) \
                    and isinstance(value.value, str):
                slug = re.sub(r"\W+", "_", value.value).strip("_")
                if slug:
                    return f"{view.name}_{slug}"
    return f"{view.name}_{counter}"

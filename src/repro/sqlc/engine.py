"""Execution entry point for flat constraint-relation plans."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.constraints import bounds
from repro.errors import ResourceExhausted
from repro.runtime import cache as cache_mod
from repro.runtime.guard import (
    ExecutionGuard,
    current_guard,
    guarded,
    should_degrade,
)
from repro.sqlc.algebra import Catalog, Materialized, Plan
from repro.sqlc.optimizer import optimize
from repro.sqlc.relation import ConstraintRelation


@dataclass
class ExecutionStats:
    """Counters filled by :func:`execute` (used by the benchmarks).

    The budget-spend block mirrors the active
    :class:`~repro.runtime.ExecutionGuard`'s counters; without a guard
    it stays at zero.  ``exhausted`` names the budget that tripped —
    recorded from the guard on every path, not only when the execution
    degraded.  The cache/prefilter block holds per-execution deltas of
    the constraint cache and bounding-box counters (zeros when caching
    is disabled).
    """

    optimized: bool = False
    input_rows: int = 0
    output_rows: int = 0
    # -- budget spend (from the ambient ExecutionGuard) ----------------
    elapsed: float = 0.0
    pivots: int = 0
    branches: int = 0
    canonical_steps: int = 0
    peak_disjuncts: int = 0
    checkpoints: int = 0
    simplex_calls: int = 0
    exhausted: str | None = None
    warnings: list[str] = field(default_factory=list)
    # -- cache / prefilter effectiveness (per-execution deltas) --------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_simplex_saved: int = 0
    box_checks: int = 0
    box_refutations: int = 0

    def capture_guard(self, guard: ExecutionGuard | None) -> None:
        if guard is None:
            return
        self.elapsed = guard.elapsed()
        self.pivots = guard.pivots
        self.branches = guard.branches
        self.canonical_steps = guard.canonical_steps
        self.peak_disjuncts = guard.peak_disjuncts
        self.checkpoints = guard.checkpoints
        self.simplex_calls = guard.simplex_calls
        if self.exhausted is None:
            self.exhausted = guard.exhausted


def execute(plan: Plan, catalog: Catalog,
            use_optimizer: bool = True,
            stats: ExecutionStats | None = None,
            guard: ExecutionGuard | None = None) -> ConstraintRelation:
    """Evaluate ``plan`` against ``catalog``.

    With ``use_optimizer`` (default) the plan is rewritten by
    :func:`repro.sqlc.optimizer.optimize` first; this is the knob the
    E8 benchmark flips.

    Resource governance: an explicit ``guard`` is activated for the
    duration of the call; otherwise the ambient guard (if any) applies.
    When the guard's policy is ``"degrade"``, budget exhaustion yields
    an **empty relation with the plan's columns** plus a warning in
    ``stats`` instead of an exception — the flat engine evaluates
    bottom-up, so there is no meaningful row prefix to salvage the way
    the naive evaluator can.
    """
    with guarded(guard) as explicit:
        active = explicit if explicit is not None else current_guard()
        cache_before = cache_mod.counters() if stats is not None else {}
        box_before = bounds.stats() if stats is not None else {}
        try:
            if use_optimizer:
                plan = optimize(plan, catalog)
            result = plan.evaluate(catalog)
        except ResourceExhausted as exc:
            if not should_degrade(active):
                raise
            result = ConstraintRelation("degraded", plan.columns)
            if stats is not None:
                stats.exhausted = exc.budget
                stats.warnings.append(f"partial result: {exc}")
        if stats is not None:
            stats.optimized = use_optimizer
            stats.input_rows = sum(len(r) for r in catalog.values())
            stats.output_rows = len(result)
            stats.capture_guard(active)
            cache_after = cache_mod.counters()
            box_after = bounds.stats()
            stats.cache_hits = cache_after["hits"] \
                - cache_before["hits"]
            stats.cache_misses = cache_after["misses"] \
                - cache_before["misses"]
            stats.cache_evictions = cache_after["evictions"] \
                - cache_before["evictions"]
            stats.cache_simplex_saved = cache_after["simplex_saved"] \
                - cache_before["simplex_saved"]
            stats.box_checks = box_after["checks"] \
                - box_before["checks"]
            stats.box_refutations = box_after["refutations"] \
                - box_before["refutations"]
    return result


def _with_materialized_children(node: Plan,
                                results: dict[int, ConstraintRelation]
                                ) -> Plan:
    """A copy of ``node`` whose Plan-valued fields are replaced by
    :class:`~repro.sqlc.algebra.Materialized` wrappers around the
    children's already-computed results."""
    if not getattr(node, "children", ()):
        return node
    changes = {
        f.name: Materialized(results[id(value)])
        for f in dataclasses.fields(node)
        if isinstance((value := getattr(node, f.name)), Plan)
    }
    return dataclasses.replace(node, **changes)


def explain_analyze(plan: Plan, catalog: Catalog,
                    use_optimizer: bool = True) -> str:
    """The plan tree annotated with actual per-node output row counts.

    Each node is evaluated exactly once: children first, then the node
    itself against *materialized* child results — so a node shared or
    deeply nested in the tree no longer re-evaluates its whole subtree
    once per ancestor.
    """
    if use_optimizer:
        plan = optimize(plan, catalog)
    counts: dict[int, int] = {}
    results: dict[int, ConstraintRelation] = {}

    def measure(node: Plan) -> None:
        if id(node) in results:
            return
        for child in getattr(node, "children", ()):
            measure(child)
        result = _with_materialized_children(node, results) \
            .evaluate(catalog)
        counts[id(node)] = len(result)
        results[id(node)] = result

    measure(plan)

    def render(node: Plan, depth: int) -> str:
        pad = "  " * depth
        line = (f"{pad}{node.describe()}  "
                f"[{counts.get(id(node), '?')} rows]")
        for child in getattr(node, "children", ()):
            line += "\n" + render(child, depth + 1)
        return line

    return render(plan, 0)

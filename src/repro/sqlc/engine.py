"""Execution entry point for flat constraint-relation plans."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.constraints import bounds
from repro.errors import ResourceExhausted
from repro.runtime import cache as cache_mod
from repro.runtime import parallel as parallel_mod
from repro.runtime.guard import (
    ExecutionGuard,
    current_guard,
    guarded,
    should_degrade,
)
from repro.sqlc import index as index_mod
from repro.sqlc.algebra import Catalog, Materialized, Plan
from repro.sqlc.optimizer import optimize
from repro.sqlc.relation import ConstraintRelation


@dataclass
class ExecutionStats:
    """Counters filled by :func:`execute` (used by the benchmarks).

    The budget-spend block mirrors the active
    :class:`~repro.runtime.ExecutionGuard`'s counters; without a guard
    it stays at zero.  ``exhausted`` names the budget that tripped —
    recorded from the guard on every path, not only when the execution
    degraded.  The cache/prefilter block holds per-execution deltas of
    the constraint cache and bounding-box counters (zeros when caching
    is disabled).
    """

    optimized: bool = False
    input_rows: int = 0
    output_rows: int = 0
    # -- budget spend (from the ambient ExecutionGuard) ----------------
    elapsed: float = 0.0
    pivots: int = 0
    branches: int = 0
    canonical_steps: int = 0
    peak_disjuncts: int = 0
    checkpoints: int = 0
    simplex_calls: int = 0
    exhausted: str | None = None
    warnings: list[str] = field(default_factory=list)
    # -- cache / prefilter effectiveness (per-execution deltas) --------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    cache_simplex_saved: int = 0
    box_checks: int = 0
    box_refutations: int = 0
    # -- box index / parallel execution (per-execution deltas) ---------
    index_probes: int = 0
    candidates_pruned: int = 0
    partitions: int = 0
    workers: int = 0

    def reset(self) -> None:
        """Zero every per-execution field so a stats object can be
        reused across :func:`execute` calls without accumulating stale
        values (:func:`execute` calls this on entry)."""
        fresh = ExecutionStats()
        for f in dataclasses.fields(self):
            setattr(self, f.name, getattr(fresh, f.name))

    def capture_guard(self, guard: ExecutionGuard | None,
                      baseline: dict | None = None) -> None:
        """Record the guard's spend, as a delta against ``baseline`` (a
        prior :meth:`ExecutionGuard.spend` snapshot) when given —
        guards accumulate across executions, so reusing one without a
        baseline would re-report earlier executions' spend."""
        if guard is None:
            return
        base = baseline or {}
        self.elapsed = guard.elapsed() - base.get("elapsed", 0.0)
        self.pivots = guard.pivots - base.get("pivots", 0)
        self.branches = guard.branches - base.get("branches", 0)
        self.canonical_steps = guard.canonical_steps \
            - base.get("canonical_steps", 0)
        self.peak_disjuncts = guard.peak_disjuncts
        self.checkpoints = guard.checkpoints \
            - base.get("checkpoints", 0)
        self.simplex_calls = guard.simplex_calls \
            - base.get("simplex_calls", 0)
        if self.exhausted is None and guard.exhausted is not None \
                and guard.exhausted != base.get("exhausted"):
            self.exhausted = guard.exhausted


def execute(plan: Plan, catalog: Catalog,
            use_optimizer: bool = True,
            stats: ExecutionStats | None = None,
            guard: ExecutionGuard | None = None) -> ConstraintRelation:
    """Evaluate ``plan`` against ``catalog``.

    With ``use_optimizer`` (default) the plan is rewritten by
    :func:`repro.sqlc.optimizer.optimize` first; this is the knob the
    E8 benchmark flips.

    Resource governance: an explicit ``guard`` is activated for the
    duration of the call; otherwise the ambient guard (if any) applies.
    When the guard's policy is ``"degrade"``, budget exhaustion yields
    an **empty relation with the plan's columns** plus a warning in
    ``stats`` instead of an exception — the flat engine evaluates
    bottom-up, so there is no meaningful row prefix to salvage the way
    the naive evaluator can.
    """
    with guarded(guard) as explicit:
        active = explicit if explicit is not None else current_guard()
        if stats is not None:
            stats.reset()
        cache_before = cache_mod.counters() if stats is not None else {}
        box_before = bounds.stats() if stats is not None else {}
        index_before = index_mod.stats() if stats is not None else {}
        par_before = parallel_mod.stats() if stats is not None else {}
        guard_before = active.spend() if active is not None \
            and stats is not None else None
        try:
            if use_optimizer:
                plan = optimize(plan, catalog)
            result = plan.evaluate(catalog)
        except ResourceExhausted as exc:
            if not should_degrade(active):
                raise
            result = ConstraintRelation("degraded", plan.columns)
            if stats is not None:
                stats.exhausted = exc.budget
                stats.warnings.append(f"partial result: {exc}")
        if stats is not None:
            stats.optimized = use_optimizer
            stats.input_rows = sum(len(r) for r in catalog.values())
            stats.output_rows = len(result)
            stats.capture_guard(active, guard_before)
            cache_after = cache_mod.counters()
            box_after = bounds.stats()
            index_after = index_mod.stats()
            par_after = parallel_mod.stats()
            stats.cache_hits = cache_after["hits"] \
                - cache_before["hits"]
            stats.cache_misses = cache_after["misses"] \
                - cache_before["misses"]
            stats.cache_evictions = cache_after["evictions"] \
                - cache_before["evictions"]
            stats.cache_simplex_saved = cache_after["simplex_saved"] \
                - cache_before["simplex_saved"]
            stats.box_checks = box_after["checks"] \
                - box_before["checks"]
            stats.box_refutations = box_after["refutations"] \
                - box_before["refutations"]
            stats.index_probes = index_after["probes"] \
                - index_before["probes"]
            stats.candidates_pruned = index_after["pruned"] \
                - index_before["pruned"]
            stats.partitions = par_after["partitions"] \
                - par_before["partitions"]
            stats.workers = par_after["max_workers"] \
                if par_after["runs"] > par_before["runs"] else 0
    return result


def _with_materialized_children(node: Plan,
                                results: dict[int, ConstraintRelation]
                                ) -> Plan:
    """A copy of ``node`` whose Plan-valued fields are replaced by
    :class:`~repro.sqlc.algebra.Materialized` wrappers around the
    children's already-computed results."""
    if not getattr(node, "children", ()):
        return node
    changes = {
        f.name: Materialized(results[id(value)])
        for f in dataclasses.fields(node)
        if isinstance((value := getattr(node, f.name)), Plan)
    }
    return dataclasses.replace(node, **changes)


def explain_analyze(plan: Plan, catalog: Catalog,
                    use_optimizer: bool = True) -> str:
    """The plan tree annotated with actual per-node output row counts.

    Each node is evaluated exactly once: children first, then the node
    itself against *materialized* child results — so a node shared or
    deeply nested in the tree no longer re-evaluates its whole subtree
    once per ancestor.
    """
    if use_optimizer:
        plan = optimize(plan, catalog)
    counts: dict[int, int] = {}
    results: dict[int, ConstraintRelation] = {}

    def measure(node: Plan) -> None:
        if id(node) in results:
            return
        for child in getattr(node, "children", ()):
            measure(child)
        replaced = _with_materialized_children(node, results)
        result = replaced.evaluate(catalog)
        if replaced is not node and hasattr(replaced, "_last"):
            # dataclasses.replace evaluated a copy; carry the index
            # probe counts back to the node being rendered.
            object.__setattr__(node, "_last", replaced._last)
        counts[id(node)] = len(result)
        results[id(node)] = result

    measure(plan)

    def render(node: Plan, depth: int) -> str:
        pad = "  " * depth
        line = (f"{pad}{node.describe()}  "
                f"[{counts.get(id(node), '?')} rows]")
        probe = getattr(node, "_last", None)
        if probe is not None:
            line += (f"  [index: probed {probe['probes']}, pruned "
                     f"{probe['pruned']} of {probe['total']} pairs, "
                     f"{probe['candidates']} candidates]")
        for child in getattr(node, "children", ()):
            line += "\n" + render(child, depth + 1)
        return line

    return render(plan, 0)

"""Execution entry point for flat constraint-relation plans."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlc.algebra import Catalog, Plan
from repro.sqlc.optimizer import optimize
from repro.sqlc.relation import ConstraintRelation


@dataclass
class ExecutionStats:
    """Counters filled by :func:`execute` (used by the benchmarks)."""

    optimized: bool = False
    input_rows: int = 0
    output_rows: int = 0


def execute(plan: Plan, catalog: Catalog,
            use_optimizer: bool = True,
            stats: ExecutionStats | None = None) -> ConstraintRelation:
    """Evaluate ``plan`` against ``catalog``.

    With ``use_optimizer`` (default) the plan is rewritten by
    :func:`repro.sqlc.optimizer.optimize` first; this is the knob the
    E8 benchmark flips.
    """
    if use_optimizer:
        plan = optimize(plan, catalog)
    result = plan.evaluate(catalog)
    if stats is not None:
        stats.optimized = use_optimizer
        stats.input_rows = sum(len(r) for r in catalog.values())
        stats.output_rows = len(result)
    return result


def explain_analyze(plan: Plan, catalog: Catalog,
                    use_optimizer: bool = True) -> str:
    """The plan tree annotated with actual per-node output row counts
    (evaluates the plan once; intermediate results are memoized)."""
    if use_optimizer:
        plan = optimize(plan, catalog)
    counts: dict[int, int] = {}

    def measure(node: Plan) -> ConstraintRelation:
        for child in getattr(node, "children", ()):
            measure(child)
        result = node.evaluate(catalog)
        counts[id(node)] = len(result)
        return result

    measure(plan)

    def render(node: Plan, depth: int) -> str:
        pad = "  " * depth
        line = (f"{pad}{node.describe()}  "
                f"[{counts.get(id(node), '?')} rows]")
        for child in getattr(node, "children", ()):
            line += "\n" + render(child, depth + 1)
        return line

    return render(plan, 0)

"""Execution entry point for flat constraint-relation plans."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceExhausted
from repro.runtime.guard import (
    ExecutionGuard,
    current_guard,
    guarded,
    should_degrade,
)
from repro.sqlc.algebra import Catalog, Plan
from repro.sqlc.optimizer import optimize
from repro.sqlc.relation import ConstraintRelation


@dataclass
class ExecutionStats:
    """Counters filled by :func:`execute` (used by the benchmarks).

    The budget-spend block mirrors the active
    :class:`~repro.runtime.ExecutionGuard`'s counters; without a guard
    it stays at zero.  ``exhausted`` names the budget that tripped when
    the execution degraded (``on_exhaustion="degrade"``).
    """

    optimized: bool = False
    input_rows: int = 0
    output_rows: int = 0
    # -- budget spend (from the ambient ExecutionGuard) ----------------
    elapsed: float = 0.0
    pivots: int = 0
    branches: int = 0
    canonical_steps: int = 0
    peak_disjuncts: int = 0
    checkpoints: int = 0
    simplex_calls: int = 0
    exhausted: str | None = None
    warnings: list[str] = field(default_factory=list)

    def capture_guard(self, guard: ExecutionGuard | None) -> None:
        if guard is None:
            return
        self.elapsed = guard.elapsed()
        self.pivots = guard.pivots
        self.branches = guard.branches
        self.canonical_steps = guard.canonical_steps
        self.peak_disjuncts = guard.peak_disjuncts
        self.checkpoints = guard.checkpoints
        self.simplex_calls = guard.simplex_calls


def execute(plan: Plan, catalog: Catalog,
            use_optimizer: bool = True,
            stats: ExecutionStats | None = None,
            guard: ExecutionGuard | None = None) -> ConstraintRelation:
    """Evaluate ``plan`` against ``catalog``.

    With ``use_optimizer`` (default) the plan is rewritten by
    :func:`repro.sqlc.optimizer.optimize` first; this is the knob the
    E8 benchmark flips.

    Resource governance: an explicit ``guard`` is activated for the
    duration of the call; otherwise the ambient guard (if any) applies.
    When the guard's policy is ``"degrade"``, budget exhaustion yields
    an **empty relation with the plan's columns** plus a warning in
    ``stats`` instead of an exception — the flat engine evaluates
    bottom-up, so there is no meaningful row prefix to salvage the way
    the naive evaluator can.
    """
    with guarded(guard) as explicit:
        active = explicit if explicit is not None else current_guard()
        try:
            if use_optimizer:
                plan = optimize(plan, catalog)
            result = plan.evaluate(catalog)
        except ResourceExhausted as exc:
            if not should_degrade(active):
                raise
            result = ConstraintRelation("degraded", plan.columns)
            if stats is not None:
                stats.exhausted = exc.budget
                stats.warnings.append(f"partial result: {exc}")
        if stats is not None:
            stats.optimized = use_optimizer
            stats.input_rows = sum(len(r) for r in catalog.values())
            stats.output_rows = len(result)
            stats.capture_guard(active)
    return result


def explain_analyze(plan: Plan, catalog: Catalog,
                    use_optimizer: bool = True) -> str:
    """The plan tree annotated with actual per-node output row counts
    (evaluates the plan once; intermediate results are memoized)."""
    if use_optimizer:
        plan = optimize(plan, catalog)
    counts: dict[int, int] = {}

    def measure(node: Plan) -> ConstraintRelation:
        for child in getattr(node, "children", ()):
            measure(child)
        result = node.evaluate(catalog)
        counts[id(node)] = len(result)
        return result

    measure(plan)

    def render(node: Plan, depth: int) -> str:
        pad = "  " * depth
        line = (f"{pad}{node.describe()}  "
                f"[{counts.get(id(node), '?')} rows]")
        for child in getattr(node, "children", ()):
            line += "\n" + render(child, depth + 1)
        return line

    return render(plan, 0)

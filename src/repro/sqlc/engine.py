"""Execution entry point for flat constraint-relation plans.

``execute`` is one phase of the staged pipeline
(:mod:`repro.core.pipeline`): it derives a
:class:`~repro.runtime.context.QueryContext` for the call, activates
it, optionally runs the optimizer's rewrite rules, and evaluates the
plan.  All effectiveness counters (cache, box prefilter, index,
parallel) are written *directly* into the context's
:class:`~repro.runtime.context.ExecutionStats` by the layers doing the
work — the engine no longer diffs process-global counters, so two
interleaved contexts keep separate accounts.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ResourceExhausted
from repro.runtime import context as context_mod
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.guard import ExecutionGuard, should_degrade
from repro.sqlc import optimizer as optimizer_mod
from repro.sqlc.algebra import Catalog, Materialized, Plan
from repro.sqlc.relation import ConstraintRelation

__all__ = ["ExecutionStats", "execute", "explain_analyze"]


def execute(plan: Plan, catalog: Catalog,
            use_optimizer: bool | None = None,
            stats: ExecutionStats | None = None,
            guard: ExecutionGuard | None = None,
            ctx: QueryContext | None = None) -> ConstraintRelation:
    """Evaluate ``plan`` against ``catalog``.

    With ``use_optimizer`` (defaulting to the context's
    ``use_optimizer`` option, itself ``True`` by default) the plan is
    rewritten by the optimizer's rule list first; this is the knob the
    E8 benchmark flips.

    State comes from ``ctx`` (or the ambient context), with ``stats``
    and ``guard`` as per-call overrides; the derived context is active
    for the duration of the call.  Plans are database-free, so a
    caller executing a cached plan passes a context carrying ``db``
    (the pipeline's bind step does) for the plan's late-bound closures
    to resolve.  When the guard's policy is
    ``"degrade"``, budget exhaustion yields an **empty relation with
    the plan's columns** plus a warning in the stats instead of an
    exception — the flat engine evaluates bottom-up, so there is no
    meaningful row prefix to salvage the way the naive evaluator can.
    """
    base = context_mod.resolve(ctx)
    overrides: dict[str, object] = {"catalog": catalog}
    if guard is not None:
        overrides["guard"] = guard
    if stats is not None:
        stats.reset()
        overrides["stats"] = stats
    exec_ctx = base.derive(**overrides)
    # Engine-assigned summary fields are only written when the caller
    # asked for an account (explicit stats or explicit ctx) — pure
    # ambient calls must not grow the default context's warning list.
    record = stats is not None or ctx is not None
    acct = exec_ctx.stats
    with exec_ctx.activate():
        active = exec_ctx.guard
        opt = use_optimizer if use_optimizer is not None \
            else exec_ctx.use_optimizer
        guard_before = active.spend() \
            if active is not None and record else None
        try:
            if opt:
                plan = optimizer_mod.apply_rules(plan, exec_ctx)
            result = plan.evaluate(catalog, exec_ctx)
        except ResourceExhausted as exc:
            if not should_degrade(active):
                raise
            result = ConstraintRelation("degraded", plan.columns)
            if record:
                acct.exhausted = exc.budget
                acct.warnings.append(f"partial result: {exc}")
        if record:
            acct.optimized = opt
            acct.input_rows = sum(len(r) for r in catalog.values())
            acct.output_rows = len(result)
            acct.capture_guard(active, guard_before)
    return result


def _with_materialized_children(node: Plan,
                                results: dict[int, ConstraintRelation]
                                ) -> Plan:
    """A copy of ``node`` whose Plan-valued fields are replaced by
    :class:`~repro.sqlc.algebra.Materialized` wrappers around the
    children's already-computed results."""
    if not getattr(node, "children", ()):
        return node
    changes = {
        f.name: Materialized(results[id(value)])
        for f in dataclasses.fields(node)
        if isinstance((value := getattr(node, f.name)), Plan)
    }
    return dataclasses.replace(node, **changes)


def explain_analyze(plan: Plan, catalog: Catalog,
                    use_optimizer: bool = True,
                    ctx: QueryContext | None = None) -> str:
    """The plan tree annotated with actual per-node output row counts.

    Each node is evaluated exactly once: children first, then the node
    itself against *materialized* child results — so a node shared or
    deeply nested in the tree no longer re-evaluates its whole subtree
    once per ancestor.
    """
    exec_ctx = context_mod.resolve(ctx).derive(catalog=catalog)
    with exec_ctx.activate():
        if use_optimizer:
            plan = optimizer_mod.apply_rules(plan, exec_ctx)
        counts: dict[int, int] = {}
        results: dict[int, ConstraintRelation] = {}

        def measure(node: Plan) -> None:
            if id(node) in results:
                return
            for child in getattr(node, "children", ()):
                measure(child)
            replaced = _with_materialized_children(node, results)
            result = replaced.evaluate(catalog, exec_ctx)
            if replaced is not node and hasattr(replaced, "_last"):
                # dataclasses.replace evaluated a copy; carry the index
                # probe counts back to the node being rendered.
                object.__setattr__(node, "_last", replaced._last)
            counts[id(node)] = len(result)
            results[id(node)] = result

        measure(plan)

    def render(node: Plan, depth: int) -> str:
        pad = "  " * depth
        line = (f"{pad}{node.describe()}  "
                f"[{counts.get(id(node), '?')} rows]")
        probe = getattr(node, "_last", None)
        if probe is not None:
            line += (f"  [index: probed {probe['probes']}, pruned "
                     f"{probe['pruned']} of {probe['total']} pairs, "
                     f"{probe['candidates']} candidates]")
            if "shards" in probe:
                left_n, right_n = probe["shards"]
                line += (f"  [shards: {left_n}x{right_n}, "
                         f"{probe['shard_pairs_pruned']} shard pairs "
                         f"pruned, {probe['shard_pairs_probed']} "
                         f"probed]")
        for child in getattr(node, "children", ()):
            line += "\n" + render(child, depth + 1)
        return line

    return render(plan, 0)

"""Hash/range-partitioned constraint relations — the sharded storage
half of scatter-gather execution.

A :class:`ShardedConstraintRelation` is a drop-in
:class:`~repro.sqlc.relation.ConstraintRelation` (same rows, same
global row order, same operators) that additionally routes every row
into one of ``shards`` internal shard relations:

* ``partition_by=<column>`` — **range partitioning** on a cheap
  spatial key of that column's cells (the midpoint of a CST cell's
  bounding box along its first variable, or a numeric literal's
  value).  Boundaries are quantiles of the keys seen when the relation
  is first *sealed* (at :data:`SEAL_MIN` rows, or on first shard
  access), so spatially close constraints land in the same shard and
  the per-shard bounding envelopes stay tight.  Rows arriving after
  sealing route by the fixed boundaries — distribution drift can
  loosen envelopes (a performance matter) but never correctness.
* ``partition_by=None`` — **round-robin** by arrival position: no
  locality, hence no envelope pruning, but ingest and per-shard
  incremental maintenance still apply.

Each shard is itself a plain ``ConstraintRelation``, so the existing
version-keyed caches maintain a *per-shard*
:class:`~repro.sqlc.index.BoxIndex` and
:class:`~repro.constraints.matrix.RelationMatrix` incrementally: a
mutation burst extends each touched shard's structures with just its
appended rows (copy-on-extend / in-place pack) instead of rebuilding
anything relation-wide.  ``register_index``/``register_matrix`` make
that maintenance *eager* — after the first query registers its
(column, boxer), every ``add_rows`` batch brings the touched shards'
indexes current at ingest time, so the next query pays no build at
all.

Routing is an internal layout decision: queries that treat the
relation as unsharded (plain ``IndexJoin``, ``Select``, the naive
evaluator) read ``_rows`` exactly as before and see identical results.
The scatter-gather consumer is :func:`scatter_pairs`, used by
:class:`~repro.sqlc.algebra.ShardedIndexJoin`: per-shard indexes are
probed pairwise, shard *pairs* whose bounding envelopes are disjoint
are pruned wholesale (``ExecutionStats.shard_pairs_pruned``), and the
surviving shard-local candidates are mapped back to global row
positions and sorted — the same candidate set, in the same nested-loop
order, as one monolithic index would produce.
"""

from __future__ import annotations

import zlib
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.constraints import matrix as matrix_mod
from repro.errors import EvaluationError
from repro.model.oid import CstOid, LiteralOid, Oid
from repro.runtime import context as context_mod
from repro.runtime import parallel as parallel_mod
from repro.runtime.context import QueryContext
from repro.sqlc import index as index_mod
from repro.sqlc.index import Boxer, cst_cell_box
from repro.sqlc.relation import ConstraintRelation

#: Rows required before range boundaries are derived.  Until then rows
#: stay unrouted (they are still visible in the global row list); the
#: first shard access seals with whatever is present.
SEAL_MIN = 64


def _spatial_key(cell: Oid) -> float | None:
    """A cheap 1-D placement key for range routing, or ``None`` when
    the cell carries no usable geometry (routing then falls back to a
    deterministic hash bucket)."""
    if isinstance(cell, CstOid):
        box = cst_cell_box(cell)
        if box:
            # The lexicographically first variable keeps the key choice
            # stable across rows that bound the same variable set.
            interval = box[min(box, key=str)]
            lo, _lo_open, hi, _hi_open = interval
            if lo is not None and hi is not None:
                return (float(lo) + float(hi)) / 2.0
            if lo is not None:
                return float(lo)
            if hi is not None:
                return float(hi)
        return None
    if isinstance(cell, LiteralOid):
        value = cell.value
        if isinstance(value, bool):
            return None
        if isinstance(value, (int, float)) or hasattr(value,
                                                      "numerator"):
            try:
                return float(value)
            except (OverflowError, TypeError, ValueError):
                return None
    return None


def _hash_bucket(cell: Oid, shards: int) -> int:
    """Deterministic (cross-process stable) fallback bucket — CRC32 of
    the cell's repr, *not* ``hash()``, which is salted for strings."""
    return zlib.crc32(repr(cell).encode("utf-8", "replace")) % shards


class ShardedConstraintRelation(ConstraintRelation):
    """A constraint relation partitioned into ``shards`` internal
    shard relations (see the module docstring).

    The global row list and mutation version behave exactly like the
    base class — sharding only adds routing metadata, so every
    consumer that does not know about shards keeps working unchanged.
    """

    __slots__ = ("shard_count", "partition_by", "_shard_rels",
                 "_shard_positions", "_boundaries", "_routed",
                 "_index_targets", "_matrix_columns")

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence] = (), *,
                 shards: int, partition_by: str | None = None):
        if shards < 2:
            raise EvaluationError(
                f"a sharded relation needs >= 2 shards, got {shards!r}")
        self.shard_count = shards
        self.partition_by = partition_by
        self._shard_rels = [
            ConstraintRelation(f"{name}#{i}", columns)
            for i in range(shards)]
        #: Per shard: the *global* row positions it owns, ascending
        #: (rows are routed in arrival order) — the map scatter-gather
        #: uses to translate shard-local candidates back.
        self._shard_positions: list[list[int]] = [
            [] for _ in range(shards)]
        #: Range boundaries (len ``shards - 1``), or ``None`` until
        #: sealed.  Round-robin relations never set boundaries.
        self._boundaries: list[float] | None = None
        #: Rows [0, _routed) are already distributed into shards.
        self._routed = 0
        #: Eagerly maintained per-shard structures: (column, boxer)
        #: box indexes and packed-matrix columns.
        self._index_targets: list[tuple[str, Boxer]] = []
        self._matrix_columns: set[str] = set()
        super().__init__(name, columns)
        if partition_by is not None:
            self.column_index(partition_by)  # validates the column
        rows = list(rows)
        if rows:
            self.add_rows(rows)

    # -- ingest ----------------------------------------------------------

    def add_row(self, row: Sequence) -> None:
        super().add_row(row)
        # Single-row appends route (so shard membership stays current)
        # but defer index maintenance to the next probe — the cached
        # per-shard index then *extends* by exactly the burst's rows.
        self._route_backlog(force=False)

    def add_rows(self, rows: Iterable[Sequence]) -> int:
        appended = super().add_rows(rows)
        if appended:
            touched = self._route_backlog(force=False)
            if touched:
                self._refresh_shards(touched)
        return appended

    # -- routing ---------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """Have range boundaries been fixed (always true for
        round-robin)?"""
        return self.partition_by is None or self._boundaries is not None

    def _seal(self) -> None:
        """Fix the range boundaries from the keys of the rows present
        now (quantiles, so the initial batch spreads evenly)."""
        if self.sealed:
            return
        cell_at = self.column_index(self.partition_by)
        keys = sorted(
            key for row in self._rows
            if (key := _spatial_key(row[cell_at])) is not None)
        if keys:
            self._boundaries = [
                keys[(i * len(keys)) // self.shard_count]
                for i in range(1, self.shard_count)]
        else:
            self._boundaries = []

    def _shard_of(self, position: int, row: tuple) -> int:
        if self.partition_by is None:
            return position % self.shard_count
        cell = row[self.column_index(self.partition_by)]
        key = _spatial_key(cell)
        if key is None:
            return _hash_bucket(cell, self.shard_count)
        return bisect_right(self._boundaries, key)

    def _route_backlog(self, force: bool) -> set[int]:
        """Distribute every unrouted row into its shard.  Range
        relations wait for :data:`SEAL_MIN` rows (or ``force``, used by
        the first shard access) before fixing boundaries."""
        if not self.sealed:
            if not force and len(self._rows) < SEAL_MIN:
                return set()
            self._seal()
        touched: set[int] = set()
        if self._routed == len(self._rows):
            return touched
        per_shard: list[list] = [[] for _ in range(self.shard_count)]
        for position in range(self._routed, len(self._rows)):
            row = self._rows[position]
            shard = self._shard_of(position, row)
            per_shard[shard].append(row)
            self._shard_positions[shard].append(position)
            touched.add(shard)
        for shard in touched:
            # One bulk append per touched shard: the shard's version
            # delta equals its row delta, so the per-shard BoxIndex /
            # RelationMatrix caches take their incremental-extend path.
            self._shard_rels[shard].add_rows(per_shard[shard])
        self._routed = len(self._rows)
        return touched

    # -- per-shard derived structures -------------------------------------

    def register_index(self, column: str, boxer: Boxer,
                       ctx: QueryContext | None = None) -> None:
        """Maintain a per-shard box index of ``column`` under ``boxer``
        eagerly: built now, extended on every future ``add_rows``
        batch (boxers compare by identity, matching the index cache)."""
        for col, bxr in self._index_targets:
            if col == column and bxr is boxer:
                return
        self._index_targets.append((column, boxer))
        ctx = context_mod.resolve(ctx)
        for rel in self._shard_rels:
            index_mod.index_for(rel, column, boxer, ctx=ctx)

    def register_matrix(self, column: str) -> None:
        """Maintain a per-shard packed coefficient matrix of
        ``column`` eagerly (see :func:`~repro.constraints.matrix.
        matrix_for`)."""
        if column in self._matrix_columns:
            return
        self._matrix_columns.add(column)
        for rel in self._shard_rels:
            matrix_mod.matrix_for(rel, column)

    def _refresh_shards(self, touched: set[int]) -> None:
        """Bring the registered derived structures of the touched
        shards current — once per batch, through the incremental-extend
        caches."""
        ctx = context_mod.current_context()
        for shard in touched:
            rel = self._shard_rels[shard]
            for column, boxer in self._index_targets:
                index_mod.index_for(rel, column, boxer, ctx=ctx)
            for column in self._matrix_columns:
                matrix_mod.matrix_for(rel, column)

    # -- shard-preserving operators ----------------------------------------

    def rename(self, mapping: dict[str, str],
               name: str | None = None) -> "ShardedConstraintRelation":
        """Shard-preserving rename: renaming never moves a row, so the
        snapshot keeps the routing (positions, boundaries, sealed
        state) and renames each shard in place.  This is what lets the
        optimizer treat ``Rename(Scan(sharded))`` as a sharded side —
        the plan shape the translator emits for aliased scans."""
        self._route_backlog(force=True)
        new_name = name or self._name
        result = ShardedConstraintRelation(
            new_name,
            [mapping.get(c, c) for c in self._columns],
            shards=self.shard_count,
            partition_by=(mapping.get(self.partition_by,
                                      self.partition_by)
                          if self.partition_by is not None else None))
        result._rows = list(self._rows)
        result._shard_rels = [
            rel.rename(mapping, name=f"{new_name}#{i}")
            for i, rel in enumerate(self._shard_rels)]
        result._shard_positions = [list(p)
                                   for p in self._shard_positions]
        result._boundaries = (None if self._boundaries is None
                              else list(self._boundaries))
        result._routed = self._routed
        return result

    # -- shard access ------------------------------------------------------

    def shard_tables(self) -> list[tuple[ConstraintRelation, list[int]]]:
        """``(shard relation, global positions)`` per shard, routing
        any backlog first (this is what seals a young range
        relation)."""
        self._route_backlog(force=True)
        return list(zip(self._shard_rels, self._shard_positions))

    def shard_sizes(self) -> list[int]:
        self._route_backlog(force=True)
        return [len(rel) for rel in self._shard_rels]

    def sequence_units(self, column: str, cells: Sequence[Oid]) -> list:
        """Packed units for ``cells`` of ``column``, served from the
        per-shard matrices (``None`` entries take the exact path, as in
        :func:`~repro.constraints.matrix._sequence_units`)."""
        self._route_backlog(force=True)
        self.register_matrix(column)
        matrices = [matrix_mod.matrix_for(rel, column)
                    for rel in self._shard_rels]
        units = []
        for cell in cells:
            unit = None
            for m in matrices:
                if m.has_cell(cell):
                    unit = m.unit_for(cell)
                    break
            units.append(unit)
        return units

    def __repr__(self) -> str:
        return (f"ShardedConstraintRelation({self._name!r}, "
                f"{len(self._rows)} rows x {self.arity} cols, "
                f"{self.shard_count} shards"
                + (f" by {self.partition_by!r}"
                   if self.partition_by else " round-robin") + ")")


# ---------------------------------------------------------------------------
# Scatter-gather candidate generation
# ---------------------------------------------------------------------------


def _probe_shard_pair(left_index, right_index):
    """Pool-worker task body: probe one surviving shard pair.  Runs
    under the worker's ambient :class:`QueryContext` (installed by the
    pool), so probe counters land on the worker's stats snapshot and
    merge back into the parent's on gather."""
    return index_mod.candidate_pairs(left_index, right_index)


def scatter_pairs(left: ShardedConstraintRelation,
                  right: ShardedConstraintRelation,
                  left_column: str, right_column: str,
                  left_boxer: Boxer, right_boxer: Boxer,
                  ctx: QueryContext | None = None,
                  workers: int | None = None
                  ) -> tuple[list[tuple[int, int]], dict]:
    """Global candidate (left, right) row-position pairs for a sharded
    join, with shard-pair envelope pruning.

    Equivalent to ``candidate_pairs`` over two monolithic indexes: a
    shard pair is skipped only when the bounding envelopes of the two
    shards are provably disjoint — then *every* cross pair has disjoint
    boxes and the monolithic index would have refuted each one
    individually.  Surviving shard pairs probe their (incrementally
    maintained) per-shard indexes; shard-local positions map back
    through each shard's global-position list and the union is sorted
    into nested-loop order.

    When the persistent worker pool is available (and the context's
    fault plan does not force serial execution), the surviving pairs
    are probed *concurrently*: each pair ships its two
    :class:`~repro.sqlc.index.BoxIndex` objects — pure data, so they
    pickle — to a pool worker and the shard-local results merge back in
    global shard-pair order.  Probing spends no guard budget (only
    stats), so the parallel path returns the byte-identical pair list
    the serial loop produces, under any budget.
    """
    ctx = context_mod.resolve(ctx)
    left.register_index(left_column, left_boxer, ctx=ctx)
    right.register_index(right_column, right_boxer, ctx=ctx)
    left_shards = [
        (positions, index_mod.index_for(rel, left_column, left_boxer,
                                        ctx=ctx), len(rel))
        for rel, positions in left.shard_tables()]
    right_shards = [
        (positions, index_mod.index_for(rel, right_column, right_boxer,
                                        ctx=ctx), len(rel))
        for rel, positions in right.shard_tables()]

    # Pass 1: envelope pruning — collect the surviving shard pairs so
    # the probe phase can dispatch them as one task batch.
    surviving: list[tuple[int, int]] = []
    pruned = 0
    for li, (_, left_index, left_size) in enumerate(left_shards):
        left_env = left_index.envelope()
        for ri, (_, right_index, right_size) in enumerate(right_shards):
            if index_mod.envelopes_disjoint(left_env,
                                            right_index.envelope()):
                pruned += 1
                # Every cross pair died without per-pair work; keep the
                # relation-level pruning counter meaningful.
                ctx.stats.candidates_pruned += left_size * right_size
                continue
            surviving.append((li, ri))
    probed = len(surviving)

    # Pass 2: probe the survivors — concurrently through the pool when
    # it is worth it, serially otherwise.  Either way ``local_sets``
    # lines up with ``surviving`` (deterministic merge order).
    local_sets = None
    parallel_probes = 0
    if parallel_mod.should_scatter(probed, ctx, workers):
        tasks = [(left_shards[li][1], right_shards[ri][1])
                 for li, ri in surviving]
        if parallel_mod.transportable(tasks[0]):
            local_sets = parallel_mod.scatter_tasks(
                _probe_shard_pair, tasks, ctx=ctx, workers=workers)
            parallel_probes = probed
    if local_sets is None:
        local_sets = [
            index_mod.candidate_pairs(left_shards[li][1],
                                      right_shards[ri][1], ctx=ctx)
            for li, ri in surviving]

    pairs: list[tuple[int, int]] = []
    for (li, ri), local in zip(surviving, local_sets):
        left_positions = left_shards[li][0]
        right_positions = right_shards[ri][0]
        pairs.extend((left_positions[l], right_positions[r])
                     for l, r in local)
    pairs.sort()
    ctx.stats.shard_joins += 1
    ctx.stats.shard_pairs_pruned += pruned
    ctx.stats.shard_pairs_probed += probed
    ctx.stats.shard_pairs_parallel += parallel_probes
    return pairs, {
        "shards": (len(left_shards), len(right_shards)),
        "shard_pairs_pruned": pruned,
        "shard_pairs_probed": probed,
        "shard_pairs_parallel": parallel_probes,
    }

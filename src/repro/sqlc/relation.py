"""Flat constraint relations — the data structure of [BJM93]-style
"SQL with linear constraints", the paper's Section 5 translation target.

A :class:`ConstraintRelation` is an ordinary named relation whose cells
are logical oids; since CST objects are oids (:class:`CstOid`), a cell
may hold a constraint, which is what makes the relation a *constraint
relation*.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from repro.errors import EvaluationError
from repro.model.oid import Oid, as_oid


class ConstraintRelation:
    """An immutable-by-convention flat relation.

    Rows are tuples of oids aligned with ``columns``.  Duplicate rows
    are kept by default (bag semantics, like SQL); :meth:`distinct`
    removes them.
    """

    __slots__ = ("_name", "_columns", "_rows", "_index", "_version",
                 "_observer", "_batch_observer", "__weakref__")

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[Sequence] = ()):
        self._name = name
        self._columns = tuple(columns)
        if len(set(self._columns)) != len(self._columns):
            raise EvaluationError(
                f"duplicate column names in relation {name!r}: "
                f"{self._columns}")
        self._rows: list[tuple[Oid, ...]] = []
        self._index = {c: i for i, c in enumerate(self._columns)}
        self._version = 0
        self._observer = None
        self._batch_observer = None
        rows = list(rows)
        if rows:
            self.add_rows(rows)

    # -- construction ------------------------------------------------------

    def set_observer(self, observer, batch_observer=None) -> None:
        """Subscribe ``observer(relation, row)`` to :meth:`add_row`
        (or ``None`` to unsubscribe) — the durable store's write-ahead
        log hooks every appended row here (:mod:`repro.storage`).

        ``batch_observer(relation, rows)``, when given, receives one
        call per :meth:`add_rows` batch instead of one per row, so a
        bulk ingest costs one WAL record; without it ``add_rows`` falls
        back to per-row ``observer`` notifications."""
        self._observer = observer
        self._batch_observer = batch_observer

    def _prepare_row(self, row: Sequence) -> tuple[Oid, ...]:
        values = tuple(as_oid(v) for v in row)
        if len(values) != len(self._columns):
            raise EvaluationError(
                f"cannot add a {len(values)}-value row to relation "
                f"{self._name!r}: it has {len(self._columns)} columns "
                f"{self._columns}")
        return values

    def add_row(self, row: Sequence) -> None:
        values = self._prepare_row(row)
        self._rows.append(values)
        self._version += 1
        if self._observer is not None:
            self._observer(self, values)

    def add_rows(self, rows: Iterable[Sequence]) -> int:
        """Bulk append: validates and appends every row, bumping the
        version once per row (so derived-structure caches still see an
        append-only delta) but notifying observers once per *batch*.
        Returns the number of rows appended."""
        prepared = [self._prepare_row(row) for row in rows]
        if not prepared:
            return 0
        self._rows.extend(prepared)
        self._version += len(prepared)
        if self._batch_observer is not None:
            self._batch_observer(self, prepared)
        elif self._observer is not None:
            for values in prepared:
                self._observer(self, values)
        return len(prepared)

    # -- inspection ----------------------------------------------------------

    @property
    def name(self) -> str:
        return self._name

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    @property
    def arity(self) -> int:
        return len(self._columns)

    @property
    def version(self) -> int:
        """Mutation counter — bumped by every :meth:`add_row`.

        Derived structures (the box indexes of
        :mod:`repro.sqlc.index`) cache per ``(relation, version)`` and
        are thereby invalidated when the relation mutates.
        """
        return self._version

    def column_index(self, column: str) -> int:
        try:
            return self._index[column]
        except KeyError:
            raise EvaluationError(
                f"relation {self._name!r} has no column {column!r}; "
                f"columns are {self._columns}") from None

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Oid, ...]]:
        return iter(self._rows)

    def cell(self, row: tuple[Oid, ...], column: str) -> Oid:
        return row[self.column_index(column)]

    def row_dict(self, row: tuple[Oid, ...]) -> dict[str, Oid]:
        return dict(zip(self._columns, row))

    # -- basic operators (fluent style; the plan nodes in algebra.py
    # compose these lazily) -----------------------------------------------------

    def rename(self, mapping: dict[str, str],
               name: str | None = None) -> "ConstraintRelation":
        columns = [mapping.get(c, c) for c in self._columns]
        result = ConstraintRelation(name or self._name, columns)
        result._rows = list(self._rows)
        return result

    def project(self, columns: Sequence[str],
                name: str | None = None) -> "ConstraintRelation":
        indexes = [self.column_index(c) for c in columns]
        result = ConstraintRelation(name or self._name, columns)
        if indexes == list(range(len(self._columns))):
            # Identity projection: the row tuples are immutable, so
            # they are shared instead of being rebuilt cell-by-cell.
            result._rows = list(self._rows)
        else:
            result._rows = [tuple(row[i] for i in indexes)
                            for row in self._rows]
        return result

    def select(self, predicate: Callable[[dict[str, Oid]], bool],
               name: str | None = None) -> "ConstraintRelation":
        result = ConstraintRelation(name or self._name, self._columns)
        # Kept rows are the original tuples (never copied); only the
        # per-row environment dict for the predicate is fresh.
        columns = self._columns
        result._rows = [row for row in self._rows
                        if predicate(dict(zip(columns, row)))]
        return result

    def distinct(self) -> "ConstraintRelation":
        seen: set[tuple[Oid, ...]] = set()
        result = ConstraintRelation(self._name, self._columns)
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                result._rows.append(row)
        return result

    def union(self, other: "ConstraintRelation") -> "ConstraintRelation":
        if self._columns != other._columns:
            raise EvaluationError(
                f"union of incompatible relations {self._columns} vs "
                f"{other._columns}")
        result = ConstraintRelation(self._name, self._columns)
        result._rows = self._rows + other._rows
        return result

    def natural_join(self, other: "ConstraintRelation",
                     name: str | None = None) -> "ConstraintRelation":
        """Hash join on the shared column names."""
        shared = [c for c in self._columns if c in other._index]
        other_only = [c for c in other._columns if c not in self._index]
        out_columns = list(self._columns) + other_only
        result = ConstraintRelation(
            name or f"({self._name}*{other._name})", out_columns)

        if not shared:
            for left in self._rows:
                for right in other._rows:
                    result._rows.append(
                        left + tuple(right[other.column_index(c)]
                                     for c in other_only))
            return result

        table: dict[tuple, list[tuple[Oid, ...]]] = {}
        shared_other = [other.column_index(c) for c in shared]
        for right in other._rows:
            key = tuple(right[i] for i in shared_other)
            table.setdefault(key, []).append(right)
        shared_self = [self.column_index(c) for c in shared]
        other_only_idx = [other.column_index(c) for c in other_only]
        for left in self._rows:
            key = tuple(left[i] for i in shared_self)
            for right in table.get(key, ()):
                result._rows.append(
                    left + tuple(right[i] for i in other_only_idx))
        return result

    # -- display -----------------------------------------------------------------

    def __repr__(self) -> str:
        return (f"ConstraintRelation({self._name!r}, "
                f"{len(self._rows)} rows x {self.arity} cols)")

    def pretty(self, limit: int = 20) -> str:
        lines = [" | ".join(self._columns)]
        for row in self._rows[:limit]:
            lines.append(" | ".join(str(v) for v in row))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)

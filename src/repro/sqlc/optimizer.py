"""Plan rewriting: selection pushdown and join ordering.

The paper (Section 5) leaves a full constraint algebra and optimizer to
future work but bases the naive implementation on SQL with constraints;
we supply the two classic rewrites every such engine needs:

* **selection pushdown** — a Select above a join whose predicate only
  references one side's columns moves below the join; conjunctions are
  split first so each conjunct sinks as deep as it can;
* **join ordering** — chains of natural joins are re-associated
  greedily, starting from the smallest base relation and always joining
  the relation sharing columns with the partial result (avoiding
  accidental cross products);
* **index-join selection** — a Select whose conjunction holds an
  *intersective* constraint predicate (one carrying
  :attr:`~repro.sqlc.algebra.CstPredicate.boxers`) spanning both sides
  of the join below it becomes an :class:`~repro.sqlc.algebra.
  IndexJoin`, which probes per-relation box indexes to enumerate only
  box-overlapping candidate pairs before the exact test.

The rewrites are semantics-preserving for the operators used by the
translator (set/bag equivalence up to row order).
"""

from __future__ import annotations

from repro.sqlc import index as index_mod
from repro.sqlc.algebra import (
    And,
    Catalog,
    ColumnEq,
    ColumnLiteral,
    CstPredicate,
    Distinct,
    Extend,
    IndexJoin,
    NaturalJoin,
    Not,
    Or,
    Plan,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)


def optimize(plan: Plan, catalog: Catalog | None = None) -> Plan:
    """Apply all rewrites; ``catalog`` (when given) provides the base
    relation sizes used by the greedy join order."""
    plan = push_selections(plan)
    plan = reorder_joins(plan, catalog or {})
    plan = push_selections(plan)
    if index_mod.indexing_active():
        plan = select_index_joins(plan)
    return plan


# ---------------------------------------------------------------------------
# Selection pushdown
# ---------------------------------------------------------------------------


def push_selections(plan: Plan) -> Plan:
    if isinstance(plan, Select):
        child = push_selections(plan.child)
        conjuncts = _split_conjuncts(plan.predicate)
        return _sink_conjuncts(child, conjuncts)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(push_selections(plan.left),
                           push_selections(plan.right))
    if isinstance(plan, Project):
        return Project(push_selections(plan.child), plan.kept)
    if isinstance(plan, Rename):
        return Rename(push_selections(plan.child), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(push_selections(plan.child))
    if isinstance(plan, Union):
        return Union(push_selections(plan.left),
                     push_selections(plan.right))
    if isinstance(plan, Extend):
        return Extend(push_selections(plan.child), plan.column,
                      plan.compute, plan.label)
    return plan


def _split_conjuncts(predicate: Predicate) -> list[Predicate]:
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_split_conjuncts(part))
        return out
    return [predicate]


def _sink_conjuncts(plan: Plan, conjuncts: list[Predicate]) -> Plan:
    """Push each conjunct as deep as possible into ``plan``."""
    if not conjuncts:
        return plan
    if isinstance(plan, NaturalJoin):
        left_cols = set(plan.left.columns)
        right_cols = set(plan.right.columns)
        left_side: list[Predicate] = []
        right_side: list[Predicate] = []
        stuck: list[Predicate] = []
        for pred in conjuncts:
            cols = pred.referenced_columns
            if cols <= left_cols:
                left_side.append(pred)
            elif cols <= right_cols:
                right_side.append(pred)
            else:
                stuck.append(pred)
        new = NaturalJoin(_sink_conjuncts(plan.left, left_side),
                          _sink_conjuncts(plan.right, right_side))
        return _wrap(new, stuck)
    if isinstance(plan, Rename):
        mapping = dict(plan.mapping)
        reverse = {b: a for a, b in mapping.items()}
        child_cols = set(plan.child.columns)
        pushable: list[Predicate] = []
        stuck: list[Predicate] = []
        for pred in conjuncts:
            renamed = _rename_predicate(pred, reverse)
            if renamed is not None \
                    and renamed.referenced_columns <= child_cols:
                pushable.append(renamed)
            else:
                stuck.append(pred)
        new = Rename(_sink_conjuncts(plan.child, pushable), plan.mapping)
        return _wrap(new, stuck)
    if isinstance(plan, Select):
        inner = _split_conjuncts(plan.predicate)
        return _sink_conjuncts(plan.child, inner + conjuncts)
    return _wrap(plan, conjuncts)


def _predicate_cost(pred: Predicate) -> int:
    """Relative evaluation cost: oid comparisons are free, constraint
    predicates call the exact solver.  Used to order conjuncts so that
    cheap tests prune rows before expensive ones run (``And`` is
    short-circuiting)."""
    if isinstance(pred, (ColumnEq, ColumnLiteral)):
        return 0
    if isinstance(pred, Not):
        return _predicate_cost(pred.part)
    if isinstance(pred, (And, Or)):
        return max((_predicate_cost(p) for p in pred.parts), default=0)
    if isinstance(pred, CstPredicate):
        return 2
    return 1


def _wrap(plan: Plan, conjuncts: list[Predicate]) -> Plan:
    if not conjuncts:
        return plan
    # Stable sort: cheap conjuncts first, original order among equals —
    # semantics-preserving because conjunction is commutative and every
    # predicate is a pure row test.
    conjuncts = sorted(conjuncts, key=_predicate_cost)
    predicate = conjuncts[0] if len(conjuncts) == 1 \
        else And(tuple(conjuncts))
    return Select(plan, predicate)


def _rename_predicate(pred: Predicate,
                      reverse: dict[str, str]) -> Predicate | None:
    """Predicate with columns renamed backwards through a Rename; None
    when the predicate type cannot be renamed structurally."""
    if isinstance(pred, ColumnEq):
        return ColumnEq(reverse.get(pred.left, pred.left),
                        reverse.get(pred.right, pred.right))
    if isinstance(pred, ColumnLiteral):
        return ColumnLiteral(reverse.get(pred.column, pred.column),
                             pred.value)
    if isinstance(pred, CstPredicate):
        return CstPredicate(
            tuple(reverse.get(c, c) for c in pred.columns),
            pred.test, pred.label,
            tuple((reverse.get(c, c), boxer)
                  for c, boxer in pred.boxers))
    return None


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


def reorder_joins(plan: Plan, catalog: Catalog) -> Plan:
    if isinstance(plan, NaturalJoin):
        leaves = _collect_join_leaves(plan)
        if len(leaves) > 2:
            original_columns = plan.columns
            leaves = [reorder_joins(leaf, catalog) for leaf in leaves]
            joined = _greedy_join(leaves, catalog)
            if joined.columns == original_columns:
                return joined
            # Reordering permutes the natural-join column order;
            # restore it so the rewrite is observationally neutral.
            return Project(joined, original_columns)
        return NaturalJoin(reorder_joins(plan.left, catalog),
                           reorder_joins(plan.right, catalog))
    if isinstance(plan, Select):
        return Select(reorder_joins(plan.child, catalog), plan.predicate)
    if isinstance(plan, Project):
        return Project(reorder_joins(plan.child, catalog), plan.kept)
    if isinstance(plan, Rename):
        return Rename(reorder_joins(plan.child, catalog), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(reorder_joins(plan.child, catalog))
    if isinstance(plan, Union):
        return Union(reorder_joins(plan.left, catalog),
                     reorder_joins(plan.right, catalog))
    if isinstance(plan, Extend):
        return Extend(reorder_joins(plan.child, catalog), plan.column,
                      plan.compute, plan.label)
    return plan


def _collect_join_leaves(plan: Plan) -> list[Plan]:
    if isinstance(plan, NaturalJoin):
        return _collect_join_leaves(plan.left) \
            + _collect_join_leaves(plan.right)
    return [plan]


def _estimate(plan: Plan, catalog: Catalog) -> int:
    if isinstance(plan, Scan):
        rel = catalog.get(plan.relation)
        return len(rel) if rel is not None else 1000
    if isinstance(plan, (Select,)):
        return max(1, _estimate(plan.child, catalog) // 3)
    if isinstance(plan, (Project, Rename, Distinct, Extend)):
        return _estimate(plan.child, catalog)
    if isinstance(plan, NaturalJoin):
        return _estimate(plan.left, catalog) \
            * max(1, _estimate(plan.right, catalog))
    return 1000


# ---------------------------------------------------------------------------
# Index-join selection
# ---------------------------------------------------------------------------


def select_index_joins(plan: Plan) -> Plan:
    """Rewrite ``Select(..., NaturalJoin(L, R))`` into
    :class:`~repro.sqlc.algebra.IndexJoin` when a conjunct is a
    constraint predicate with boxers covering one column of each side.

    Soundness rests on the boxers' pairwise-intersective contract
    (:class:`~repro.sqlc.algebra.CstPredicate`): a pair whose boxes are
    disjoint on the chosen columns provably fails that conjunct, hence
    the whole conjunction — exactly the rows the unrewritten Select
    would have dropped.  Runs after pushdown/reordering so the Select
    directly above each join carries all the stuck cross-side
    conjuncts.
    """
    if isinstance(plan, Select):
        child = select_index_joins(plan.child)
        join = child
        kept = None
        # reorder_joins may interpose a column-order-restoring Project;
        # Select and Project commute when the predicate only references
        # kept columns (always true: it sits above the Project).
        if isinstance(join, Project) \
                and isinstance(join.child, NaturalJoin) \
                and plan.predicate.referenced_columns <= set(join.kept):
            kept = join.kept
            join = join.child
        if isinstance(join, NaturalJoin):
            rewritten = _try_index_join(
                join, _split_conjuncts(plan.predicate))
            if rewritten is not None:
                return rewritten if kept is None \
                    else Project(rewritten, kept)
        return Select(child, plan.predicate)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(select_index_joins(plan.left),
                           select_index_joins(plan.right))
    if isinstance(plan, Project):
        return Project(select_index_joins(plan.child), plan.kept)
    if isinstance(plan, Rename):
        return Rename(select_index_joins(plan.child), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(select_index_joins(plan.child))
    if isinstance(plan, Union):
        return Union(select_index_joins(plan.left),
                     select_index_joins(plan.right))
    if isinstance(plan, Extend):
        return Extend(select_index_joins(plan.child), plan.column,
                      plan.compute, plan.label)
    return plan


def _try_index_join(join: NaturalJoin,
                    conjuncts: list[Predicate]) -> IndexJoin | None:
    left_cols = set(join.left.columns)
    right_cols = set(join.right.columns)
    for pred in conjuncts:
        if not isinstance(pred, CstPredicate) or not pred.boxers:
            continue
        boxer_map = dict(pred.boxers)
        # The indexed columns must live on exactly one side each:
        # shared columns are already equality-joined and ambiguous.
        left_pick = next(
            (c for c in pred.columns
             if c in boxer_map and c in left_cols
             and c not in right_cols), None)
        right_pick = next(
            (c for c in pred.columns
             if c in boxer_map and c in right_cols
             and c not in left_cols), None)
        if left_pick is None or right_pick is None:
            continue
        # Cheap conjuncts first, as _wrap would order a plain Select.
        ordered = sorted(conjuncts, key=_predicate_cost)
        predicate = ordered[0] if len(ordered) == 1 \
            else And(tuple(ordered))
        return IndexJoin(join.left, join.right, left_pick, right_pick,
                         boxer_map[left_pick], boxer_map[right_pick],
                         predicate)
    return None


def _greedy_join(leaves: list[Plan], catalog: Catalog) -> Plan:
    remaining = sorted(leaves, key=lambda p: _estimate(p, catalog))
    current = remaining.pop(0)
    current_cols = set(current.columns)
    while remaining:
        # Prefer a leaf sharing columns (a real join); smallest first.
        pick = next(
            (i for i, leaf in enumerate(remaining)
             if current_cols & set(leaf.columns)),
            0)
        leaf = remaining.pop(pick)
        current = NaturalJoin(current, leaf)
        current_cols |= set(leaf.columns)
    return current

"""Plan rewriting as an ordered list of named rules.

The paper (Section 5) leaves a full constraint algebra and optimizer to
future work but bases the naive implementation on SQL with constraints;
we supply the classic rewrites every such engine needs, each expressed
as a named :class:`RewriteRule` with signature ``(plan, ctx) -> plan``:

* ``push-selections`` — a Select above a join whose predicate only
  references one side's columns moves below the join; conjunctions are
  split first so each conjunct sinks as deep as it can;
* ``reorder-joins`` — chains of natural joins are re-associated
  greedily, starting from the smallest base relation and always joining
  the relation sharing columns with the partial result (avoiding
  accidental cross products);
* ``cheap-predicates-first`` — conjuncts inside each Select reorder so
  free oid comparisons prune rows before exact-solver predicates run;
* ``select-index-joins`` (physical) — a Select whose conjunction holds
  an *intersective* constraint predicate (one carrying
  :attr:`~repro.sqlc.algebra.CstPredicate.boxers`) spanning both sides
  of the join below it becomes an :class:`~repro.sqlc.algebra.
  IndexJoin`, which probes per-relation box indexes to enumerate only
  box-overlapping candidate pairs before the exact test;
* ``select-sharded-joins`` (physical) — an IndexJoin whose two sides
  scan sharded catalog relations becomes a :class:`~repro.sqlc.algebra.
  ShardedIndexJoin`, scatter-gathering over per-shard box indexes and
  pruning shard pairs with disjoint bounding envelopes;
* ``decide-parallelism`` (physical) — filter-bearing nodes are
  annotated with the context's worker count, making the degree of
  parallelism an explicit plan property.

:data:`LOGICAL_RULES` and :data:`PHYSICAL_RULES` are what the staged
pipeline (:mod:`repro.core.pipeline`) runs as its rewrite phases;
:func:`optimize` remains the one-call wrapper applying everything.
The rewrites are semantics-preserving for the operators used by the
translator (set/bag equivalence up to row order).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runtime import context as context_mod
from repro.runtime.context import PhaseRecord, QueryContext
from repro.sqlc.algebra import (
    And,
    Catalog,
    ColumnEq,
    ColumnLiteral,
    CstPredicate,
    Distinct,
    Extend,
    IndexJoin,
    NaturalJoin,
    Not,
    Or,
    Plan,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    ShardedIndexJoin,
    Union,
)


@dataclass(frozen=True)
class RewriteRule:
    """A named plan rewrite ``(plan, ctx) -> plan``."""

    name: str
    apply: Callable[[Plan, QueryContext], Plan]


def _rule_push_selections(plan: Plan, ctx: QueryContext) -> Plan:
    return push_selections(plan)


def _rule_reorder_joins(plan: Plan, ctx: QueryContext) -> Plan:
    # The catalog here is the *compile-time* snapshot and feeds row
    # estimates only: a plan-cache hit may execute a join order chosen
    # against stale sizes, which can cost performance, never
    # correctness.
    return reorder_joins(plan, ctx.catalog or {})


def _rule_cheap_predicates_first(plan: Plan, ctx: QueryContext) -> Plan:
    return order_cheap_predicates(plan)


def _rule_select_index_joins(plan: Plan, ctx: QueryContext) -> Plan:
    return select_index_joins(plan) if ctx.indexing else plan


def _rule_select_sharded_joins(plan: Plan, ctx: QueryContext) -> Plan:
    # Like reorder-joins, this reads the compile-time catalog snapshot:
    # a stale decision degrades to the monolithic path at evaluation
    # time (ShardedIndexJoin re-checks the bound relations), so a
    # plan-cache hit can only cost performance, never correctness.
    if ctx.indexing and ctx.catalog:
        return select_sharded_joins(plan, ctx.catalog)
    return plan


def _rule_decide_parallelism(plan: Plan, ctx: QueryContext) -> Plan:
    if ctx.parallelism > 1:
        return decide_parallelism(plan, ctx.parallelism)
    return plan


#: Logical rewrites (plan shape): pushdown runs again after reordering
#: because reordering can re-expose sink opportunities.
LOGICAL_RULES: tuple[RewriteRule, ...] = (
    RewriteRule("push-selections", _rule_push_selections),
    RewriteRule("reorder-joins", _rule_reorder_joins),
    RewriteRule("push-selections", _rule_push_selections),
    RewriteRule("cheap-predicates-first", _rule_cheap_predicates_first),
)

#: Physical rewrites (execution strategy), gated on context options.
PHYSICAL_RULES: tuple[RewriteRule, ...] = (
    RewriteRule("select-index-joins", _rule_select_index_joins),
    RewriteRule("select-sharded-joins", _rule_select_sharded_joins),
    RewriteRule("decide-parallelism", _rule_decide_parallelism),
)

ALL_RULES: tuple[RewriteRule, ...] = LOGICAL_RULES + PHYSICAL_RULES


def apply_rules(plan: Plan, ctx: QueryContext,
                rules: Sequence[RewriteRule] | None = None,
                record: bool = False) -> Plan:
    """Run ``rules`` (default: all of them) in order over ``plan``.

    With ``record`` each rule appends a ``rewrite:<name>`` phase record
    (timing plus rendered before/after plans) to ``ctx.stats`` — the
    per-rule rows of the pipeline's ``--analyze`` trace."""
    for rule in (ALL_RULES if rules is None else rules):
        if not record:
            plan = rule.apply(plan, ctx)
            continue
        before_text = plan.explain()
        started = time.perf_counter()
        plan = rule.apply(plan, ctx)
        after_text = plan.explain()
        ctx.stats.phases.append(PhaseRecord(
            name=f"rewrite:{rule.name}",
            seconds=time.perf_counter() - started,
            detail="changed" if after_text != before_text
            else "unchanged",
            plan_before=before_text, plan_after=after_text))
    return plan


def optimize(plan: Plan, catalog: Catalog | None = None,
             ctx: QueryContext | None = None) -> Plan:
    """Apply all rewrites; ``catalog`` (when given) provides the base
    relation sizes used by the greedy join order.  Options (indexing,
    parallelism) come from ``ctx`` or the ambient context."""
    base = context_mod.resolve(ctx)
    if catalog is not None:
        base = base.derive(catalog=catalog)
    return apply_rules(plan, base)


# ---------------------------------------------------------------------------
# Selection pushdown
# ---------------------------------------------------------------------------


def push_selections(plan: Plan) -> Plan:
    if isinstance(plan, Select):
        child = push_selections(plan.child)
        conjuncts = _split_conjuncts(plan.predicate)
        return _sink_conjuncts(child, conjuncts)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(push_selections(plan.left),
                           push_selections(plan.right))
    if isinstance(plan, Project):
        return Project(push_selections(plan.child), plan.kept)
    if isinstance(plan, Rename):
        return Rename(push_selections(plan.child), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(push_selections(plan.child))
    if isinstance(plan, Union):
        return Union(push_selections(plan.left),
                     push_selections(plan.right))
    if isinstance(plan, Extend):
        return Extend(push_selections(plan.child), plan.column,
                      plan.compute, plan.label)
    return plan


def _split_conjuncts(predicate: Predicate) -> list[Predicate]:
    if isinstance(predicate, And):
        out: list[Predicate] = []
        for part in predicate.parts:
            out.extend(_split_conjuncts(part))
        return out
    return [predicate]


def _sink_conjuncts(plan: Plan, conjuncts: list[Predicate]) -> Plan:
    """Push each conjunct as deep as possible into ``plan``."""
    if not conjuncts:
        return plan
    if isinstance(plan, NaturalJoin):
        left_cols = set(plan.left.columns)
        right_cols = set(plan.right.columns)
        left_side: list[Predicate] = []
        right_side: list[Predicate] = []
        stuck: list[Predicate] = []
        for pred in conjuncts:
            cols = pred.referenced_columns
            if cols <= left_cols:
                left_side.append(pred)
            elif cols <= right_cols:
                right_side.append(pred)
            else:
                stuck.append(pred)
        new = NaturalJoin(_sink_conjuncts(plan.left, left_side),
                          _sink_conjuncts(plan.right, right_side))
        return _wrap(new, stuck)
    if isinstance(plan, Rename):
        mapping = dict(plan.mapping)
        reverse = {b: a for a, b in mapping.items()}
        child_cols = set(plan.child.columns)
        pushable: list[Predicate] = []
        stuck: list[Predicate] = []
        for pred in conjuncts:
            renamed = _rename_predicate(pred, reverse)
            if renamed is not None \
                    and renamed.referenced_columns <= child_cols:
                pushable.append(renamed)
            else:
                stuck.append(pred)
        new = Rename(_sink_conjuncts(plan.child, pushable), plan.mapping)
        return _wrap(new, stuck)
    if isinstance(plan, Select):
        inner = _split_conjuncts(plan.predicate)
        return _sink_conjuncts(plan.child, inner + conjuncts)
    return _wrap(plan, conjuncts)


def _predicate_cost(pred: Predicate) -> int:
    """Relative evaluation cost: oid comparisons are free, constraint
    predicates call the exact solver.  Used to order conjuncts so that
    cheap tests prune rows before expensive ones run (``And`` is
    short-circuiting)."""
    if isinstance(pred, (ColumnEq, ColumnLiteral)):
        return 0
    if isinstance(pred, Not):
        return _predicate_cost(pred.part)
    if isinstance(pred, (And, Or)):
        return max((_predicate_cost(p) for p in pred.parts), default=0)
    if isinstance(pred, CstPredicate):
        return 2
    return 1


def _wrap(plan: Plan, conjuncts: list[Predicate]) -> Plan:
    if not conjuncts:
        return plan
    predicate = conjuncts[0] if len(conjuncts) == 1 \
        else And(tuple(conjuncts))
    return Select(plan, predicate)


def order_cheap_predicates(plan: Plan) -> Plan:
    """Reorder the conjuncts of every Select/IndexJoin predicate so
    cheap tests run first (stable sort: original order among equals) —
    semantics-preserving because conjunction is commutative and every
    predicate is a pure row test, and ``And`` short-circuits."""
    if isinstance(plan, Select):
        return Select(order_cheap_predicates(plan.child),
                      _order_conjuncts(plan.predicate), plan.workers)
    if isinstance(plan, IndexJoin):
        return dataclasses.replace(
            plan,
            left=order_cheap_predicates(plan.left),
            right=order_cheap_predicates(plan.right),
            predicate=_order_conjuncts(plan.predicate))
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(order_cheap_predicates(plan.left),
                           order_cheap_predicates(plan.right))
    if isinstance(plan, Union):
        return Union(order_cheap_predicates(plan.left),
                     order_cheap_predicates(plan.right))
    if isinstance(plan, Project):
        return Project(order_cheap_predicates(plan.child), plan.kept)
    if isinstance(plan, Rename):
        return Rename(order_cheap_predicates(plan.child), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(order_cheap_predicates(plan.child))
    if isinstance(plan, Extend):
        return Extend(order_cheap_predicates(plan.child), plan.column,
                      plan.compute, plan.label)
    return plan


def _order_conjuncts(predicate: Predicate) -> Predicate:
    if isinstance(predicate, And):
        return And(tuple(sorted(predicate.parts, key=_predicate_cost)))
    return predicate


def _rename_predicate(pred: Predicate,
                      reverse: dict[str, str]) -> Predicate | None:
    """Predicate with columns renamed backwards through a Rename; None
    when the predicate type cannot be renamed structurally."""
    if isinstance(pred, ColumnEq):
        return ColumnEq(reverse.get(pred.left, pred.left),
                        reverse.get(pred.right, pred.right))
    if isinstance(pred, ColumnLiteral):
        return ColumnLiteral(reverse.get(pred.column, pred.column),
                             pred.value)
    if isinstance(pred, CstPredicate):
        return CstPredicate(
            tuple(reverse.get(c, c) for c in pred.columns),
            pred.test, pred.label,
            tuple((reverse.get(c, c), boxer)
                  for c, boxer in pred.boxers),
            pred.conjunction)
    return None


# ---------------------------------------------------------------------------
# Join ordering
# ---------------------------------------------------------------------------


def reorder_joins(plan: Plan, catalog: Catalog) -> Plan:
    if isinstance(plan, NaturalJoin):
        leaves = _collect_join_leaves(plan)
        if len(leaves) > 2:
            original_columns = plan.columns
            leaves = [reorder_joins(leaf, catalog) for leaf in leaves]
            joined = _greedy_join(leaves, catalog)
            if joined.columns == original_columns:
                return joined
            # Reordering permutes the natural-join column order;
            # restore it so the rewrite is observationally neutral.
            return Project(joined, original_columns)
        return NaturalJoin(reorder_joins(plan.left, catalog),
                           reorder_joins(plan.right, catalog))
    if isinstance(plan, Select):
        return Select(reorder_joins(plan.child, catalog), plan.predicate)
    if isinstance(plan, Project):
        return Project(reorder_joins(plan.child, catalog), plan.kept)
    if isinstance(plan, Rename):
        return Rename(reorder_joins(plan.child, catalog), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(reorder_joins(plan.child, catalog))
    if isinstance(plan, Union):
        return Union(reorder_joins(plan.left, catalog),
                     reorder_joins(plan.right, catalog))
    if isinstance(plan, Extend):
        return Extend(reorder_joins(plan.child, catalog), plan.column,
                      plan.compute, plan.label)
    return plan


def _collect_join_leaves(plan: Plan) -> list[Plan]:
    if isinstance(plan, NaturalJoin):
        return _collect_join_leaves(plan.left) \
            + _collect_join_leaves(plan.right)
    return [plan]


def _estimate(plan: Plan, catalog: Catalog) -> int:
    if isinstance(plan, Scan):
        rel = catalog.get(plan.relation)
        return len(rel) if rel is not None else 1000
    if isinstance(plan, (Select,)):
        return max(1, _estimate(plan.child, catalog) // 3)
    if isinstance(plan, (Project, Rename, Distinct, Extend)):
        return _estimate(plan.child, catalog)
    if isinstance(plan, NaturalJoin):
        return _estimate(plan.left, catalog) \
            * max(1, _estimate(plan.right, catalog))
    return 1000


# ---------------------------------------------------------------------------
# Index-join selection
# ---------------------------------------------------------------------------


def select_index_joins(plan: Plan) -> Plan:
    """Rewrite ``Select(..., NaturalJoin(L, R))`` into
    :class:`~repro.sqlc.algebra.IndexJoin` when a conjunct is a
    constraint predicate with boxers covering one column of each side.

    Soundness rests on the boxers' pairwise-intersective contract
    (:class:`~repro.sqlc.algebra.CstPredicate`): a pair whose boxes are
    disjoint on the chosen columns provably fails that conjunct, hence
    the whole conjunction — exactly the rows the unrewritten Select
    would have dropped.  Runs after pushdown/reordering so the Select
    directly above each join carries all the stuck cross-side
    conjuncts.
    """
    if isinstance(plan, Select):
        child = select_index_joins(plan.child)
        join = child
        kept = None
        # reorder_joins may interpose a column-order-restoring Project;
        # Select and Project commute when the predicate only references
        # kept columns (always true: it sits above the Project).
        if isinstance(join, Project) \
                and isinstance(join.child, NaturalJoin) \
                and plan.predicate.referenced_columns <= set(join.kept):
            kept = join.kept
            join = join.child
        if isinstance(join, NaturalJoin):
            rewritten = _try_index_join(
                join, _split_conjuncts(plan.predicate))
            if rewritten is not None:
                return rewritten if kept is None \
                    else Project(rewritten, kept)
        return Select(child, plan.predicate)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(select_index_joins(plan.left),
                           select_index_joins(plan.right))
    if isinstance(plan, Project):
        return Project(select_index_joins(plan.child), plan.kept)
    if isinstance(plan, Rename):
        return Rename(select_index_joins(plan.child), plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(select_index_joins(plan.child))
    if isinstance(plan, Union):
        return Union(select_index_joins(plan.left),
                     select_index_joins(plan.right))
    if isinstance(plan, Extend):
        return Extend(select_index_joins(plan.child), plan.column,
                      plan.compute, plan.label)
    return plan


def _try_index_join(join: NaturalJoin,
                    conjuncts: list[Predicate]) -> IndexJoin | None:
    left_cols = set(join.left.columns)
    right_cols = set(join.right.columns)
    for pred in conjuncts:
        if not isinstance(pred, CstPredicate) or not pred.boxers:
            continue
        boxer_map = dict(pred.boxers)
        # The indexed columns must live on exactly one side each:
        # shared columns are already equality-joined and ambiguous.
        left_pick = next(
            (c for c in pred.columns
             if c in boxer_map and c in left_cols
             and c not in right_cols), None)
        right_pick = next(
            (c for c in pred.columns
             if c in boxer_map and c in right_cols
             and c not in left_cols), None)
        if left_pick is None or right_pick is None:
            continue
        # Cheap conjuncts first, as _wrap would order a plain Select.
        ordered = sorted(conjuncts, key=_predicate_cost)
        predicate = ordered[0] if len(ordered) == 1 \
            else And(tuple(ordered))
        return IndexJoin(join.left, join.right, left_pick, right_pick,
                         boxer_map[left_pick], boxer_map[right_pick],
                         predicate)
    return None


# ---------------------------------------------------------------------------
# Sharded-join selection
# ---------------------------------------------------------------------------


def _scans_sharded(plan: Plan, catalog: Catalog) -> bool:
    """True when ``plan`` is a Scan of a sharded catalog relation,
    possibly under Rename wrappers (the shape the translator emits for
    aliased attribute scans) — renaming is shard-preserving, so the
    layout survives to evaluation time.  Any other operator (Select,
    Project, joins) materializes a fresh monolithic relation and
    disqualifies the side."""
    from repro.sqlc.shard import ShardedConstraintRelation
    while isinstance(plan, Rename):
        plan = plan.child
    return isinstance(plan, Scan) \
        and isinstance(catalog.get(plan.relation),
                       ShardedConstraintRelation)


def select_sharded_joins(plan: Plan, catalog: Catalog) -> Plan:
    """Upgrade every :class:`IndexJoin` whose sides both scan sharded
    relations to a :class:`ShardedIndexJoin`.  Semantics-preserving by
    construction: the sharded node produces the same candidate set in
    the same order as the monolithic index (envelope pruning only drops
    pairs the pairwise box test would drop), and degrades to the parent
    path when the bound relations turn out not to be sharded."""
    if isinstance(plan, IndexJoin) \
            and not isinstance(plan, ShardedIndexJoin):
        left = select_sharded_joins(plan.left, catalog)
        right = select_sharded_joins(plan.right, catalog)
        if _scans_sharded(left, catalog) \
                and _scans_sharded(right, catalog):
            return ShardedIndexJoin(
                left, right, plan.left_column, plan.right_column,
                plan.left_boxer, plan.right_boxer, plan.predicate,
                plan.workers)
        return dataclasses.replace(plan, left=left, right=right)
    if isinstance(plan, Select):
        return Select(select_sharded_joins(plan.child, catalog),
                      plan.predicate, plan.workers)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(select_sharded_joins(plan.left, catalog),
                           select_sharded_joins(plan.right, catalog))
    if isinstance(plan, Union):
        return Union(select_sharded_joins(plan.left, catalog),
                     select_sharded_joins(plan.right, catalog))
    if isinstance(plan, Project):
        return Project(select_sharded_joins(plan.child, catalog),
                       plan.kept)
    if isinstance(plan, Rename):
        return Rename(select_sharded_joins(plan.child, catalog),
                      plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(select_sharded_joins(plan.child, catalog))
    if isinstance(plan, Extend):
        return Extend(select_sharded_joins(plan.child, catalog),
                      plan.column, plan.compute, plan.label)
    return plan


def _greedy_join(leaves: list[Plan], catalog: Catalog) -> Plan:
    remaining = sorted(leaves, key=lambda p: _estimate(p, catalog))
    current = remaining.pop(0)
    current_cols = set(current.columns)
    while remaining:
        # Prefer a leaf sharing columns (a real join); smallest first.
        pick = next(
            (i for i, leaf in enumerate(remaining)
             if current_cols & set(leaf.columns)),
            0)
        leaf = remaining.pop(pick)
        current = NaturalJoin(current, leaf)
        current_cols |= set(leaf.columns)
    return current


# ---------------------------------------------------------------------------
# Parallelism decision
# ---------------------------------------------------------------------------


def decide_parallelism(plan: Plan, workers: int) -> Plan:
    """Annotate every filter-bearing node (Select, IndexJoin) with the
    worker count, making the parallelism decision a plan property.
    Nodes carrying an annotation partition with exactly that many
    workers; unannotated nodes fall back to the context's setting at
    evaluation time (so unoptimized plans still parallelize)."""
    if isinstance(plan, Select):
        return Select(decide_parallelism(plan.child, workers),
                      plan.predicate, workers)
    if isinstance(plan, IndexJoin):
        return dataclasses.replace(
            plan,
            left=decide_parallelism(plan.left, workers),
            right=decide_parallelism(plan.right, workers),
            workers=workers)
    if isinstance(plan, NaturalJoin):
        return NaturalJoin(decide_parallelism(plan.left, workers),
                           decide_parallelism(plan.right, workers))
    if isinstance(plan, Union):
        return Union(decide_parallelism(plan.left, workers),
                     decide_parallelism(plan.right, workers))
    if isinstance(plan, Project):
        return Project(decide_parallelism(plan.child, workers),
                       plan.kept)
    if isinstance(plan, Rename):
        return Rename(decide_parallelism(plan.child, workers),
                      plan.mapping)
    if isinstance(plan, Distinct):
        return Distinct(decide_parallelism(plan.child, workers))
    if isinstance(plan, Extend):
        return Extend(decide_parallelism(plan.child, workers),
                      plan.column, plan.compute, plan.label)
    return plan

"""Box indexes over CST columns — the join-acceleration layer.

PR 2's interval prefilter (:mod:`repro.constraints.bounds`) refutes a
box-disjoint pair *after* the pair has been enumerated; every join over
CST columns therefore still pays the full |R|x|S| pair enumeration.
Following the "evaluation of geometric queries" split into a cheap
geometric phase and an exact symbolic phase, this module moves the
geometric phase *in front of* pair enumeration:

* a :class:`BoxIndex` stores, per relation row, the cheap bounding box
  of one CST column (derived from :func:`repro.constraints.bounds`),
  organised as sorted interval endpoints per variable;
* :func:`candidate_pairs` sweeps the two indexes along the most
  selective shared variable (sort + sweep; a uniform grid takes over
  for dense workloads where long intervals make the sweep's active
  lists quadratic) and emits only the pairs whose boxes overlap, in
  the same deterministic ``(left row, right row)`` order a nested loop
  would produce;
* indexes are built lazily and memoized per
  ``(relation, column, boxer, version)`` in a weak-keyed cache, so
  catalog relations scanned by many joins are indexed once and the
  cache invalidates itself when a relation mutates
  (:attr:`~repro.sqlc.relation.ConstraintRelation.version`).

Box conventions (shared with :mod:`repro.constraints.bounds`): a box is
a ``dict[Variable, Interval]``; ``None`` means *provably empty* (the
row can never match), and ``{}`` means *unknown / unbounded* (the row
must always be kept).  A "boxer" maps a relation cell to a box under
those conventions; :func:`cst_cell_box` is the default for cells whose
CST objects are already expressed over shared variable names, and the
translator builds renaming-aware boxers for its SAT predicates.

Soundness: the index only ever *drops* pairs whose boxes are provably
disjoint, which by :func:`repro.constraints.bounds.boxes_disjoint` is a
proof that the exact CST intersection is empty.  The exact predicate
still runs on every surviving candidate, so a query's answers are
identical with and without the index.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Callable, Iterator
from weakref import WeakKeyDictionary

from repro.constraints import bounds
from repro.model.oid import CstOid, Oid
from repro.runtime import context as context_mod
from repro.runtime import numeric as numeric_mod
from repro.runtime.context import QueryContext
from repro.sqlc.relation import ConstraintRelation

#: A boxer: cell -> box (``dict`` over-approximation, ``{}`` unknown,
#: ``None`` provably empty).
Boxer = Callable[[Oid], object]

#: Grid fallback threshold: when the average interval covers more than
#: this fraction of the variable's span, the sweep's active lists stay
#: long and a uniform grid enumerates candidates more cheaply.
DENSITY_THRESHOLD = 0.25

#: Effectiveness counters (process-global, like ``bounds``; the engine
#: reports per-execution deltas and the parallel evaluator absorbs
#: worker-side deltas).
_stats = {"builds": 0, "extends": 0, "probes": 0, "pruned": 0,
          "candidates": 0}


def stats() -> dict[str, int]:
    """A copy of the global index counters.

    ``builds``
        box indexes constructed from scratch (cache misses);
    ``extends``
        indexes brought current by extending a cached index with
        appended rows only (the incremental-maintenance path);
    ``probes``
        coarse candidate pairs examined by the sweep/grid phase;
    ``pruned``
        pairs refuted without running the exact predicate
        (``|R|x|S| - candidates`` per join);
    ``candidates``
        pairs that survived to the exact phase.
    """
    return dict(_stats)


def reset_stats() -> None:
    for key in _stats:
        _stats[key] = 0


def absorb_stats(delta: dict) -> None:
    """Fold counter deltas from a worker process into this process's
    counters (used by :mod:`repro.runtime.parallel`)."""
    for key, value in delta.items():
        if key in _stats:
            _stats[key] += value


# ---------------------------------------------------------------------------
# Enable/disable gate (the CLI's --no-index)
# ---------------------------------------------------------------------------


def indexing_active() -> bool:
    """Is box-index join acceleration enabled in the active context?"""
    return context_mod.current_context().indexing


@contextmanager
def indexing(enabled: bool) -> Iterator[None]:
    """Enable/disable index-join selection for the dynamic extent (the
    optimizer consults this; plans built while disabled use
    ``NaturalJoin`` + ``Select`` throughout).  Shim deriving a
    :class:`~repro.runtime.context.QueryContext` over the current
    one."""
    derived = context_mod.current_context().derive(indexing=enabled)
    with derived.activate():
        yield


# ---------------------------------------------------------------------------
# Boxers
# ---------------------------------------------------------------------------


def cst_cell_box(cell: Oid) -> object:
    """The cheap bounding box of a CST cell, over the cell's own
    variable names.

    Sound for predicates that intersect CST values *without renaming*
    (variables matched by name).  Non-CST cells — which the exact
    predicate must see, typically to raise — map to the unknown box.
    """
    if not isinstance(cell, CstOid):
        return {}
    try:
        return cell.cst.cheap_box()
    except Exception:
        return {}


# ---------------------------------------------------------------------------
# The index
# ---------------------------------------------------------------------------

_NEG_INF = -math.inf
_POS_INF = math.inf


#: Lazily-computed :meth:`BoxIndex.envelope` not taken yet (the value
#: itself may legitimately be ``None`` — a provably empty index).
_ENVELOPE_UNSET: object = object()


class BoxIndex:
    """Per-row boxes of one CST column, with per-variable sorted
    interval lists for the sweep."""

    __slots__ = ("n_rows", "boxes", "nonempty", "bounded", "unbounded",
                 "_envelope")

    def __init__(self, relation: ConstraintRelation, column: str,
                 boxer: Boxer):
        cell_index = relation.column_index(column)
        self.n_rows = len(relation)
        #: Per row position: box dict, ``None`` (provably empty), or
        #: ``{}`` (unknown — always a candidate).
        self.boxes = [boxer(row[cell_index]) for row in relation]
        #: Row positions that can match at all.
        self.nonempty = [pos for pos, box in enumerate(self.boxes)
                         if box is not None]
        #: var -> [(lo, hi, pos)] for rows bounding the variable
        #: (closed-endpoint over-approximation; exactness is restored
        #: by the boxes_disjoint refinement).
        self.bounded: dict = {}
        #: var -> [pos] for nonempty rows *not* bounding the variable.
        self.unbounded: dict = {}
        variables = set()
        for box in self.boxes:
            if box:
                variables.update(box)
        for var in variables:
            intervals, free = [], []
            for pos in self.nonempty:
                interval = self.boxes[pos].get(var)
                if interval is None:
                    free.append(pos)
                else:
                    lo, _lo_open, hi, _hi_open = interval
                    intervals.append((
                        _NEG_INF if lo is None else lo,
                        _POS_INF if hi is None else hi,
                        pos))
            self.bounded[var] = intervals
            self.unbounded[var] = free
        self._envelope = _ENVELOPE_UNSET

    def coverage(self, var) -> int:
        """How many rows the variable actually bounds."""
        return len(self.bounded.get(var, ()))

    def envelope(self) -> "dict | None":
        """The bounding envelope of every row in this index, computed
        once per index (indexes are immutable; an extension is a new
        index with a fresh envelope).

        ``None`` means *provably empty* — no row can ever match.  A
        dict maps each variable that **every** nonempty row bounds to
        the closed hull ``(min lo, max hi)`` of their intervals; a
        variable any row leaves free is omitted (that row overlaps
        everything along it, so the hull would prove nothing).  An
        empty dict is the unknown envelope: it overlaps everything.
        """
        if self._envelope is _ENVELOPE_UNSET:
            self._envelope = self._compute_envelope()
        return self._envelope

    def _compute_envelope(self) -> "dict | None":
        if not self.nonempty:
            return None
        envelope: dict = {}
        for var, intervals in self.bounded.items():
            if not intervals or self.unbounded.get(var):
                continue
            envelope[var] = (min(iv[0] for iv in intervals),
                             max(iv[1] for iv in intervals))
        return envelope

    def extended(self, relation: ConstraintRelation, column: str,
                 boxer: Boxer) -> "BoxIndex":
        """A *new* index covering ``relation``'s current rows, built by
        boxing only the rows appended since this index was taken.

        Copy-on-extend: this index is never mutated, so references
        handed out earlier (a join still sweeping it, a worker that
        shipped it) stay frozen at their row count.  The result is
        structurally identical to ``BoxIndex(relation, column, boxer)``
        — per-variable lists keep ascending row-position order because
        appends only ever add larger positions.
        """
        cell_index = relation.column_index(column)
        fresh_boxes = [boxer(row[cell_index])
                       for row in list(relation)[self.n_rows:]]
        new = BoxIndex.__new__(BoxIndex)
        new.n_rows = len(relation)
        new.boxes = self.boxes + fresh_boxes
        new.nonempty = list(self.nonempty)
        new.bounded = {var: list(iv) for var, iv in self.bounded.items()}
        new.unbounded = {var: list(ps)
                         for var, ps in self.unbounded.items()}
        for box in fresh_boxes:
            if box:
                for var in box:
                    if var not in new.bounded:
                        # A variable first bounded by an appended row:
                        # every earlier nonempty row leaves it free.
                        new.bounded[var] = []
                        new.unbounded[var] = list(self.nonempty)
        for offset, box in enumerate(fresh_boxes):
            pos = self.n_rows + offset
            if box is None:
                continue
            new.nonempty.append(pos)
            for var in new.bounded:
                interval = box.get(var)
                if interval is None:
                    new.unbounded[var].append(pos)
                else:
                    lo, _lo_open, hi, _hi_open = interval
                    new.bounded[var].append((
                        _NEG_INF if lo is None else lo,
                        _POS_INF if hi is None else hi,
                        pos))
        new._envelope = _ENVELOPE_UNSET
        return new


def envelopes_disjoint(left: "dict | None", right: "dict | None") -> bool:
    """Are two :meth:`BoxIndex.envelope` values provably disjoint?

    ``True`` only when *every* cross pair of rows has disjoint boxes:
    either side is empty, or the closed hulls are strictly separated
    along a variable both sides bound on all rows — then each left
    box's interval lies entirely below (or above) each right box's,
    which is exactly what :func:`repro.constraints.bounds.
    boxes_disjoint` would conclude pair by pair.  Strict inequality
    keeps the test sound for open endpoints: touching hulls are never
    pruned.
    """
    if left is None or right is None:
        return True
    for var, (left_lo, left_hi) in left.items():
        other = right.get(var)
        if other is None:
            continue
        right_lo, right_hi = other
        if left_hi < right_lo or right_hi < left_lo:
            return True
    return False


# ---------------------------------------------------------------------------
# Index cache (weak-keyed on the relation, invalidated by version)
# ---------------------------------------------------------------------------

_index_cache: WeakKeyDictionary = WeakKeyDictionary()


def index_for(relation: ConstraintRelation, column: str,
              boxer: Boxer,
              ctx: QueryContext | None = None) -> BoxIndex:
    """The (possibly cached) box index of ``relation[column]``.

    The boxer participates by *object identity*, and boxers are pure
    schema-derived closures attached to the plan at translate time —
    so a plan-cache hit, which reuses the plan's boxer objects, keeps
    hitting the same index-cache entries across executions.

    Entries are keyed by ``(column, boxer, version)`` — the version is
    *part of the key*, so an index returned for one version is never
    revised under a caller's feet when the relation mutates and is
    probed again mid-scan (stale-read safety for interleaved mutation
    and query).  On a version miss, when every missed mutation is an
    appended row (the relation's version delta equals its row-count
    delta — :meth:`~ConstraintRelation.add_row` is the only version
    bump), the newest cached index is *extended* with just the new
    rows (:meth:`BoxIndex.extended`); anything else — including
    derived relations whose rows were assigned wholesale — rebuilds
    from scratch.  Older versions are pruned from the cache once
    superseded; dropping the relation drops its indexes (weak keys).
    """
    per_relation = _index_cache.get(relation)
    if per_relation is None:
        per_relation = {}
        _index_cache[relation] = per_relation
    key = (column, boxer, relation.version)
    hit = per_relation.get(key)
    if hit is not None:
        return hit
    newest_version, newest = -1, None
    for (col, bxr, version), index in per_relation.items():
        if col == column and bxr == boxer \
                and version > newest_version:
            newest_version, newest = version, index
    appended_only = (
        newest is not None
        and newest_version < relation.version
        and relation.version - newest_version
        == len(relation) - newest.n_rows
        and len(relation) >= newest.n_rows)
    if appended_only:
        built = newest.extended(relation, column, boxer)
        _stats["extends"] += 1
        context_mod.resolve(ctx).stats.index_extends += 1
    else:
        built = BoxIndex(relation, column, boxer)
        _stats["builds"] += 1
        context_mod.resolve(ctx).stats.index_builds += 1
    stale = [k for k in per_relation
             if k[0] == column and k[1] == boxer
             and k[2] != relation.version]
    for k in stale:
        del per_relation[k]
    per_relation[key] = built
    return built


def cached_indexes() -> int:
    """Total live cached indexes (introspection for tests)."""
    return sum(len(per) for per in _index_cache.values())


def clear_index_cache() -> None:
    _index_cache.clear()


# ---------------------------------------------------------------------------
# Candidate generation
# ---------------------------------------------------------------------------


def _sweep(lefts: list, rights: list) -> list[tuple[int, int]]:
    """All (left pos, right pos) pairs whose closed intervals overlap,
    by a sort + sweep over the interval start points."""
    lefts = sorted(lefts)
    rights = sorted(rights)
    out: list[tuple[int, int]] = []
    i = j = 0
    active_left: list[tuple] = []   # (hi, pos) still open
    active_right: list[tuple] = []
    while i < len(lefts) or j < len(rights):
        if j >= len(rights) or (i < len(lefts)
                                and lefts[i][0] <= rights[j][0]):
            lo, hi, pos = lefts[i]
            i += 1
            live = []
            for other_hi, other_pos in active_right:
                if other_hi >= lo:
                    live.append((other_hi, other_pos))
                    out.append((pos, other_pos))
            active_right = live
            active_left.append((hi, pos))
        else:
            lo, hi, pos = rights[j]
            j += 1
            live = []
            for other_hi, other_pos in active_left:
                if other_hi >= lo:
                    live.append((other_hi, other_pos))
                    out.append((other_pos, pos))
            active_left = live
            active_right.append((hi, pos))
    return out


def _grid(lefts: list, rights: list) -> list[tuple[int, int]]:
    """Uniform-grid candidate generation — the dense-workload fallback
    where long intervals keep the sweep's active lists near-full."""
    finite = [end for lo, hi, _pos in lefts + rights
              for end in (lo, hi) if end not in (_NEG_INF, _POS_INF)]
    if not finite:
        return _sweep(lefts, rights)
    span_lo, span_hi = min(finite), max(finite)
    if span_hi <= span_lo:
        span_hi = span_lo + 1
    cells = max(4, min(256, 2 * math.isqrt(len(lefts) + len(rights))))
    width = (span_hi - span_lo) / cells

    def cell_range(lo, hi) -> tuple[int, int]:
        first = 0 if lo == _NEG_INF \
            else min(cells - 1, max(0, int((lo - span_lo) / width)))
        last = cells - 1 if hi == _POS_INF \
            else min(cells - 1, max(0, int((hi - span_lo) / width)))
        return first, last

    buckets: list[list] = [[] for _ in range(cells)]
    for lo, hi, pos in rights:
        first, last = cell_range(lo, hi)
        for cell in range(first, last + 1):
            buckets[cell].append((lo, hi, pos))
    out: list[tuple[int, int]] = []
    for lo, hi, pos in lefts:
        first, last = cell_range(lo, hi)
        seen: set[int] = set()
        for cell in range(first, last + 1):
            for other_lo, other_hi, other_pos in buckets[cell]:
                if other_pos in seen:
                    continue
                seen.add(other_pos)
                if other_lo <= hi and other_hi >= lo:
                    out.append((pos, other_pos))
    return out


def _density(intervals: list) -> float:
    """Average fraction of the variable's span one interval covers."""
    finite = [end for lo, hi, _pos in intervals
              for end in (lo, hi) if end not in (_NEG_INF, _POS_INF)]
    if not finite:
        return 1.0
    span = max(finite) - min(finite)
    if span <= 0:
        return 1.0
    total = 0.0
    for lo, hi, _pos in intervals:
        if lo == _NEG_INF or hi == _POS_INF:
            total += float(span)
        else:
            total += float(hi - lo)
    return total / (float(span) * len(intervals))


#: Side-size floor below which the vectorized all-pairs overlap costs
#: more than the sweep, and product ceiling above which its dense
#: boolean matrix is not worth the memory.
VECTOR_MIN_SIDE = 32
VECTOR_MAX_PRODUCT = 4_000_000


def _float_ends(intervals: list, np) -> "tuple | None":
    """Interval endpoints as float arrays padded one ulp *outwards*, so
    every rational overlap survives the float comparison (a sound
    superset — spurious pairs die in the exact refinement).  ``None``
    when an endpoint does not convert."""
    try:
        lo = np.array([float(iv[0]) for iv in intervals],
                      dtype=np.float64)
        hi = np.array([float(iv[1]) for iv in intervals],
                      dtype=np.float64)
    except (OverflowError, ValueError):
        return None
    return np.nextafter(lo, -np.inf), np.nextafter(hi, np.inf)


def _vector_overlap(lefts: list, rights: list
                    ) -> "list[tuple[int, int]] | None":
    """Numpy all-pairs interval overlap, or ``None`` when numpy is
    missing, the sides are too small/large, or endpoints overflow."""
    np = numeric_mod.get_numpy()
    if np is None:
        return None
    if len(lefts) < VECTOR_MIN_SIDE or len(rights) < VECTOR_MIN_SIDE \
            or len(lefts) * len(rights) > VECTOR_MAX_PRODUCT:
        return None
    left_ends = _float_ends(lefts, np)
    right_ends = _float_ends(rights, np)
    if left_ends is None or right_ends is None:
        return None
    llo, lhi = left_ends
    rlo, rhi = right_ends
    overlap = (llo[:, None] <= rhi[None, :]) \
        & (rlo[None, :] <= lhi[:, None])
    return [(lefts[i][2], rights[j][2])
            for i, j in np.argwhere(overlap)]


def _overlapping_pairs(lefts: list, rights: list,
                       use_vector: bool = False
                       ) -> list[tuple[int, int]]:
    if not lefts or not rights:
        return []
    if use_vector:
        pairs = _vector_overlap(lefts, rights)
        if pairs is not None:
            return pairs
    if _density(lefts) > DENSITY_THRESHOLD \
            or _density(rights) > DENSITY_THRESHOLD:
        return _grid(lefts, rights)
    return _sweep(lefts, rights)


def _sweep_variable(left: BoxIndex, right: BoxIndex):
    """The shared variable with the highest pruning power: the one
    bounding the most rows on both sides (product of coverages)."""
    best, best_score = None, 0
    for var in left.bounded:
        score = left.coverage(var) * right.coverage(var)
        if score > best_score:
            best, best_score = var, score
    return best


def candidate_pairs(left: BoxIndex, right: BoxIndex,
                    ctx: QueryContext | None = None
                    ) -> list[tuple[int, int]]:
    """Row-position pairs whose boxes overlap, sorted in nested-loop
    order ``(left, right)``.

    The coarse phase (sweep or grid on the best shared variable) emits
    a superset of the box-overlapping pairs; each coarse pair is then
    refined with the exact multi-variable
    :func:`repro.constraints.bounds.boxes_disjoint` test.  Pairs never
    emitted — separated along the sweep variable, or provably empty on
    either side — are pruned without any per-pair work at all.
    """
    ctx = context_mod.resolve(ctx)
    total = left.n_rows * right.n_rows
    var = _sweep_variable(left, right)
    if var is None:
        coarse = [(l, r) for l in left.nonempty for r in right.nonempty]
    else:
        coarse = _overlapping_pairs(left.bounded[var],
                                    right.bounded[var],
                                    use_vector=ctx.numeric_active())
        # Rows unbounded on the sweep variable overlap everything
        # along it: pair them with every nonempty row of the far side.
        if right.unbounded[var]:
            free = right.unbounded[var]
            for lo, hi, pos in left.bounded[var]:
                coarse.extend((pos, other) for other in free)
        if left.unbounded[var]:
            for pos in left.unbounded[var]:
                coarse.extend((pos, other) for other in right.nonempty)
    _stats["probes"] += len(coarse)
    ctx.stats.index_probes += len(coarse)
    candidates = [
        (l, r) for l, r in coarse
        if not bounds.boxes_disjoint(left.boxes[l], right.boxes[r],
                                     ctx=ctx)]
    candidates.sort()
    _stats["candidates"] += len(candidates)
    _stats["pruned"] += total - len(candidates)
    ctx.stats.index_candidates += len(candidates)
    ctx.stats.candidates_pruned += total - len(candidates)
    return candidates

"""Flat "SQL with constraints": relations, plan algebra, box indexes,
optimizer and execution engine — the Section 5 translation target."""

from repro.sqlc.algebra import (
    And,
    ColumnEq,
    ColumnLiteral,
    CstPredicate,
    Distinct,
    Extend,
    IndexJoin,
    NaturalJoin,
    Not,
    Or,
    Plan,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.sqlc.engine import ExecutionStats, execute
from repro.sqlc.index import (
    BoxIndex,
    candidate_pairs,
    index_for,
    indexing,
    indexing_active,
)
from repro.sqlc.optimizer import (
    optimize,
    push_selections,
    reorder_joins,
    select_index_joins,
)
from repro.sqlc.relation import ConstraintRelation

__all__ = [
    "And",
    "BoxIndex",
    "ColumnEq",
    "ColumnLiteral",
    "ConstraintRelation",
    "CstPredicate",
    "Distinct",
    "ExecutionStats",
    "Extend",
    "IndexJoin",
    "NaturalJoin",
    "Not",
    "Or",
    "Plan",
    "Predicate",
    "Project",
    "Rename",
    "Scan",
    "Select",
    "Union",
    "candidate_pairs",
    "execute",
    "index_for",
    "indexing",
    "indexing_active",
    "optimize",
    "push_selections",
    "reorder_joins",
    "select_index_joins",
]

"""Flat "SQL with constraints": relations, plan algebra, optimizer and
execution engine — the Section 5 translation target."""

from repro.sqlc.algebra import (
    And,
    ColumnEq,
    ColumnLiteral,
    CstPredicate,
    Distinct,
    Extend,
    NaturalJoin,
    Not,
    Or,
    Plan,
    Predicate,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)
from repro.sqlc.engine import ExecutionStats, execute
from repro.sqlc.optimizer import optimize, push_selections, reorder_joins
from repro.sqlc.relation import ConstraintRelation

__all__ = [
    "And",
    "ColumnEq",
    "ColumnLiteral",
    "ConstraintRelation",
    "CstPredicate",
    "Distinct",
    "ExecutionStats",
    "Extend",
    "NaturalJoin",
    "Not",
    "Or",
    "Plan",
    "Predicate",
    "Project",
    "Rename",
    "Scan",
    "Select",
    "Union",
    "execute",
    "optimize",
    "push_selections",
    "reorder_joins",
]

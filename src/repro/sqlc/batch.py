"""Batch-wise predicate evaluation over the numeric kernel.

The row-wise evaluator (:func:`repro.runtime.parallel.filter_rows`)
calls the predicate once per row, and each constraint predicate call
walks the exact solver.  This module evaluates whole filters with one
kernel call per chunk instead, whenever the predicate exposes an
*extractable* constraint form
(:attr:`~repro.sqlc.algebra.CstPredicate.conjunction`):

1. non-constraint conjuncts *preceding* the extractable one run
   row-wise first (preserving ``And``'s short-circuit semantics —
   a row rejected early never reaches the constraint, exactly as in
   the row-wise evaluator);
2. surviving rows' constraints are extracted, packed into a
   :class:`~repro.constraints.matrix.ConstraintMatrix` (pre-packed
   per-relation when the extractor is the standard
   :func:`~repro.constraints.matrix.cell_constraint`), and classified
   by one :func:`~repro.constraints.kernel.classify_matrix` call;
3. rows the kernel could not decide fall back to the *original*
   predicate through the row-wise evaluator, under a derived context
   with numeric off — exact semantics, exact error behaviour, same
   parallel partitioning as before;
4. conjuncts *after* the extractable one run row-wise on survivors.

Output rows and their order are identical to the row-wise evaluator's
by construction: the kernel only replaces individual boolean answers,
never the iteration order, and its accepts/rejects are verified /
ε-sound (see :mod:`repro.constraints.kernel`).  When the context's
numeric option is off — explicitly, under fault injection, or because
the ``fast`` extra is missing — this module delegates wholesale to the
row-wise evaluator.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints import kernel, matrix
from repro.runtime import context as context_mod
from repro.runtime import parallel
from repro.sqlc.algebra import And, CstPredicate, Predicate

#: Below this many rows the batch machinery costs more than it saves.
MIN_BATCH = 8


def _split(predicate: Predicate
           ) -> "tuple[tuple, CstPredicate, tuple] | None":
    """``(pre, extractable, post)`` decomposition of the predicate, or
    ``None`` when no conjunct carries an extractor."""
    if isinstance(predicate, CstPredicate):
        if predicate.conjunction is not None:
            return (), predicate, ()
        return None
    if isinstance(predicate, And):
        for i, part in enumerate(predicate.parts):
            if isinstance(part, CstPredicate) \
                    and part.conjunction is not None:
                return (predicate.parts[:i], part,
                        predicate.parts[i + 1:])
    return None


def _units_for(cst: CstPredicate, cells: Sequence[tuple],
               relation) -> list:
    """Packed units for the extracted constraints of ``cells`` (the
    per-row oid tuples for ``cst.columns``).  ``None`` entries mark
    rows whose extraction failed — they take the exact path, where the
    original ``test`` reproduces any error."""
    extractor = cst.conjunction
    if (extractor is matrix.cell_constraint and relation is not None
            and len(cst.columns) == 1):
        from repro.sqlc.shard import ShardedConstraintRelation
        if isinstance(relation, ShardedConstraintRelation):
            # Sharded relations keep one matrix per shard, extended
            # eagerly at ingest; look each cell up across them instead
            # of packing a redundant monolithic matrix.
            return relation.sequence_units(cst.columns[0],
                                           [c[0] for c in cells])
        # The standard single-cell extractor over a base relation:
        # systems were packed once per relation version.
        rm = matrix.matrix_for(relation, cst.columns[0])
        return matrix._sequence_units([c[0] for c in cells], rm)
    units = []
    for values in cells:
        try:
            constraint = extractor(*values)
        except Exception:
            constraint = None
        units.append(matrix.pack_constraint(constraint)
                     if constraint is not None else None)
    return units


def filter_rows(columns: Sequence[str], rows: list, predicate,
                ctx=None, workers: int | None = None,
                relation=None) -> list:
    """Drop-in for :func:`repro.runtime.parallel.filter_rows` that
    batches extractable constraint predicates through the numeric
    kernel.  ``relation`` (optional) names the base relation the rows
    came from, enabling the per-relation packed-matrix cache."""
    resolved = context_mod.resolve(ctx)
    plan = None
    if resolved.numeric_active() and len(rows) >= MIN_BATCH:
        plan = _split(predicate)
    if plan is None:
        return parallel.filter_rows(columns, rows, predicate,
                                    ctx=resolved, workers=workers)
    pre, cst, post = plan
    cols = tuple(columns)
    position = {c: i for i, c in enumerate(cols)}
    cst_idx = [position[c] for c in cst.columns]

    dicts = [dict(zip(cols, row)) for row in rows]
    alive = [i for i in range(len(rows))
             if all(p(dicts[i]) for p in pre)]

    units = _units_for(cst, [tuple(rows[i][j] for j in cst_idx)
                             for i in alive], relation)
    cm = matrix.ConstraintMatrix.from_units(units)
    verdicts = kernel.classify_matrix(cm, resolved)

    keep: dict[int, bool] = {}
    unknown: list[int] = []
    for i, verdict in zip(alive, verdicts):
        if verdict == kernel.FEASIBLE:
            keep[i] = True
        elif verdict == kernel.INFEASIBLE:
            keep[i] = False
        else:
            unknown.append(i)

    if unknown:
        # Exact fallback: the original constraint conjunct, row-wise,
        # with numeric off so nested satisfiability checks do not
        # re-enter the kernel they just fell out of.
        exact_ctx = resolved.derive(numeric=False)
        with exact_ctx.activate():
            kept_rows = parallel.filter_rows(
                cols, [rows[i] for i in unknown], cst,
                ctx=exact_ctx, workers=workers)
        # Map the kept subset (an order-preserving sub-list of the
        # unknown rows; worker round-trips may copy the tuples, and a
        # deterministic predicate decides equal-valued rows equally)
        # back to row positions.
        at = 0
        for i in unknown:
            if at < len(kept_rows) and kept_rows[at] == rows[i]:
                keep[i] = True
                at += 1
            else:
                keep[i] = False

    return [rows[i] for i in range(len(rows))
            if keep.get(i) and all(p(dicts[i]) for p in post)]

"""Plan algebra over flat constraint relations.

Plans are small immutable trees of operators (scan, select, project,
rename, join, product, union, distinct) over
:class:`~repro.sqlc.relation.ConstraintRelation`.  Selection predicates
include the constraint predicates of "SQL with constraints": CST-field
satisfiability and entailment tests, evaluated by the constraint engine.

This is the evaluation target of the Section 5 translation; the
optimizer (:mod:`repro.sqlc.optimizer`) rewrites these trees.

Plans are *database-free*: base relations are referenced by catalog
name (:class:`Scan`), and the closures inside
:class:`CstPredicate`/:class:`Extend` resolve the database through
:func:`repro.runtime.context.bound_db` at evaluation time.  That makes
a plan tree a pure function of (query, schema, options) — the contract
the compiled-plan cache (:mod:`repro.runtime.plancache`) relies on to
share one plan across executions, databases and parameter bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.errors import EvaluationError
from repro.model.oid import CstOid, Oid
from repro.runtime import context as context_mod
from repro.runtime import parallel
from repro.runtime.context import QueryContext
from repro.sqlc import index as index_mod
from repro.sqlc.relation import ConstraintRelation

#: The evaluation environment maps base-relation names to relations.
Catalog = Mapping[str, ConstraintRelation]


class Plan:
    """Base class of plan nodes."""

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        raise NotImplementedError

    @property
    def columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def explain(self, depth: int = 0) -> str:
        pad = "  " * depth
        children = getattr(self, "children", ())
        text = f"{pad}{self.describe()}"
        for child in children:
            text += "\n" + child.explain(depth + 1)
        return text

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class Scan(Plan):
    """A base relation by catalog name."""

    relation: str
    _columns: tuple[str, ...]

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        try:
            rel = catalog[self.relation]
        except KeyError:
            raise EvaluationError(
                f"unknown base relation {self.relation!r}") from None
        if rel.columns != self._columns:
            raise EvaluationError(
                f"catalog relation {self.relation!r} has columns "
                f"{rel.columns}, plan expected {self._columns}")
        return rel

    @property
    def columns(self) -> tuple[str, ...]:
        return self._columns

    def describe(self) -> str:
        return f"Scan({self.relation})"


@dataclass(frozen=True)
class Rename(Plan):
    """Column renaming."""

    child: Plan
    mapping: tuple[tuple[str, str], ...]

    @property
    def children(self):
        return (self.child,)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        return self.child.evaluate(catalog, ctx).rename(
            dict(self.mapping))

    @property
    def columns(self) -> tuple[str, ...]:
        mapping = dict(self.mapping)
        return tuple(mapping.get(c, c) for c in self.child.columns)

    def describe(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in self.mapping)
        return f"Rename({pairs})"


@dataclass(frozen=True)
class Project(Plan):
    child: Plan
    kept: tuple[str, ...]

    @property
    def children(self):
        return (self.child,)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        return self.child.evaluate(catalog, ctx).project(self.kept)

    @property
    def columns(self) -> tuple[str, ...]:
        return self.kept

    def describe(self) -> str:
        return f"Project({', '.join(self.kept)})"


@dataclass(frozen=True)
class Select(Plan):
    child: Plan
    predicate: "Predicate"
    #: Worker-count annotation planted by the optimizer's parallelism
    #: rule; None = use the context's setting.
    workers: int | None = None

    @property
    def children(self):
        return (self.child,)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        base = self.child.evaluate(catalog, ctx)
        # Large filters partition across worker processes when the
        # context allows (serial and parallel keep the same row order;
        # see repro.runtime.parallel); batch evaluation additionally
        # routes extractable constraint predicates through the numeric
        # kernel when the context's numeric option is active.
        from repro.sqlc import batch
        kept = batch.filter_rows(base.columns, list(base),
                                 self.predicate, ctx=ctx,
                                 workers=self.workers, relation=base)
        result = ConstraintRelation(base.name, base.columns)
        result._rows = kept
        return result

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns

    def describe(self) -> str:
        return f"Select({self.predicate})"


@dataclass(frozen=True)
class NaturalJoin(Plan):
    left: Plan
    right: Plan

    @property
    def children(self):
        return (self.left, self.right)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        return self.left.evaluate(catalog, ctx).natural_join(
            self.right.evaluate(catalog, ctx))

    @property
    def columns(self) -> tuple[str, ...]:
        left = self.left.columns
        return left + tuple(c for c in self.right.columns
                            if c not in left)

    def describe(self) -> str:
        shared = set(self.left.columns) & set(self.right.columns)
        return f"NaturalJoin(on {sorted(shared)})"


@dataclass(frozen=True, eq=False)
class IndexJoin(Plan):
    """A join accelerated by box indexes on one CST column per side.

    Equivalent to ``Select(predicate, NaturalJoin(left, right))`` — the
    optimizer rewrites that pattern into this node when ``predicate``
    contains an *intersective* constraint conjunct (one whose
    :attr:`CstPredicate.boxers` prove it false whenever the boxes of
    ``left_column`` and ``right_column`` are disjoint).  Evaluation
    probes the two box indexes to enumerate only box-overlapping
    candidate pairs, joins those, and runs the full exact ``predicate``
    on the candidates; pruned pairs are exactly pairs the exact
    predicate would have rejected, so results are identical to the
    unindexed plan (same rows, same order).

    When the interval prefilter is disabled (``--no-prefilter``, or a
    :class:`~repro.runtime.faults.FaultPlan` run, where box shortcuts
    would perturb deterministic fault schedules) the node degrades to
    the plain nested enumeration — same exact-phase work as the
    unrewritten plan.
    """

    left: Plan
    right: Plan
    left_column: str
    right_column: str
    left_boxer: Callable
    right_boxer: Callable
    predicate: "Predicate"
    #: Worker-count annotation planted by the optimizer's parallelism
    #: rule; None = use the context's setting.
    workers: int | None = None

    @property
    def children(self):
        return (self.left, self.right)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        ctx = context_mod.resolve(ctx)
        left = self.left.evaluate(catalog, ctx)
        right = self.right.evaluate(catalog, ctx)
        pairs = self._candidate_pairs(left, right, ctx)
        return self._join_candidates(left, right, pairs, ctx)

    def _candidate_pairs(self, left: ConstraintRelation,
                         right: ConstraintRelation,
                         ctx: QueryContext) -> list[tuple[int, int]]:
        """Candidate row-position pairs via one monolithic box index
        per side (or full enumeration when indexing/prefilter is off).
        Also plants the ``_last`` probe record ``explain_analyze``
        renders."""
        total = len(left) * len(right)
        if ctx.indexing and ctx.prefilter_active():
            left_index = index_mod.index_for(
                left, self.left_column, self.left_boxer, ctx=ctx)
            right_index = index_mod.index_for(
                right, self.right_column, self.right_boxer, ctx=ctx)
            before = index_mod.stats()
            pairs = index_mod.candidate_pairs(left_index, right_index,
                                              ctx=ctx)
            after = index_mod.stats()
            object.__setattr__(self, "_last", {
                "probes": after["probes"] - before["probes"],
                "candidates": len(pairs),
                "pruned": total - len(pairs),
                "total": total,
            })
        else:
            pairs = [(l, r) for l in range(len(left))
                     for r in range(len(right))]
            object.__setattr__(self, "_last", None)
        return pairs

    def _join_candidates(self, left: ConstraintRelation,
                         right: ConstraintRelation,
                         pairs: list[tuple[int, int]],
                         ctx: QueryContext) -> ConstraintRelation:
        """The exact tail shared by every candidate source: equality
        on shared columns, row assembly in ``(left, right)`` order, and
        the batched exact predicate."""
        shared = [c for c in left.columns if c in right.columns]
        other_only = [c for c in right.columns if c not in left.columns]
        out_columns = tuple(left.columns) + tuple(other_only)
        left_rows = list(left)
        right_rows = list(right)

        if shared:
            left_idx = [left.column_index(c) for c in shared]
            right_idx = [right.column_index(c) for c in shared]
            pairs = [
                (l, r) for l, r in pairs
                if all(left_rows[l][i] == right_rows[r][j]
                       for i, j in zip(left_idx, right_idx))]
        other_idx = [right.column_index(c) for c in other_only]
        rows = [left_rows[l] + tuple(right_rows[r][i] for i in other_idx)
                for l, r in pairs]
        from repro.sqlc import batch
        kept = batch.filter_rows(out_columns, rows, self.predicate,
                                 ctx=ctx, workers=self.workers)
        result = ConstraintRelation(
            f"({left.name}*{right.name})", out_columns)
        result._rows = kept
        return result

    @property
    def columns(self) -> tuple[str, ...]:
        left = self.left.columns
        return left + tuple(c for c in self.right.columns
                            if c not in left)

    def describe(self) -> str:
        return (f"IndexJoin({self.left_column} box-overlap "
                f"{self.right_column}; exact {self.predicate})")


@dataclass(frozen=True, eq=False)
class ShardedIndexJoin(IndexJoin):
    """Scatter-gather :class:`IndexJoin` over sharded relations.

    Selected by the optimizer when both sides scan
    :class:`~repro.sqlc.shard.ShardedConstraintRelation` catalog
    entries.  Candidate generation probes the per-shard box indexes
    pairwise, pruning shard *pairs* whose bounding envelopes are
    disjoint before any per-pair work
    (``ExecutionStats.shard_pairs_pruned``); surviving shard-local
    candidates map back to global row positions and sort into the same
    nested-loop order a monolithic index produces, so the exact phase
    — and therefore the result, byte for byte — is identical to
    :class:`IndexJoin`.

    Plans outlive catalogs (the plan cache shares them across
    executions): when a bound side turns out *not* to be sharded — the
    relation was rebuilt monolithic, or the node is evaluated against
    a hand-built catalog — the node degrades to the plain
    :class:`IndexJoin` path.  Sharding is an execution layout, never a
    correctness requirement.
    """

    def _candidate_pairs(self, left: ConstraintRelation,
                         right: ConstraintRelation,
                         ctx: QueryContext) -> list[tuple[int, int]]:
        from repro.sqlc.shard import ShardedConstraintRelation
        from repro.sqlc.shard import scatter_pairs
        if not (isinstance(left, ShardedConstraintRelation)
                and isinstance(right, ShardedConstraintRelation)) \
                or not (ctx.indexing and ctx.prefilter_active()):
            return super()._candidate_pairs(left, right, ctx)
        total = len(left) * len(right)
        before = index_mod.stats()
        pairs, info = scatter_pairs(
            left, right, self.left_column, self.right_column,
            self.left_boxer, self.right_boxer, ctx=ctx,
            workers=self.workers)
        after = index_mod.stats()
        object.__setattr__(self, "_last", {
            "probes": after["probes"] - before["probes"],
            "candidates": len(pairs),
            "pruned": total - len(pairs),
            "total": total,
            "shards": info["shards"],
            "shard_pairs_pruned": info["shard_pairs_pruned"],
            "shard_pairs_probed": info["shard_pairs_probed"],
            "shard_pairs_parallel": info["shard_pairs_parallel"],
        })
        return pairs

    def describe(self) -> str:
        return (f"ShardedIndexJoin({self.left_column} box-overlap "
                f"{self.right_column}; exact {self.predicate})")


@dataclass(frozen=True)
class Distinct(Plan):
    child: Plan

    @property
    def children(self):
        return (self.child,)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        return self.child.evaluate(catalog, ctx).distinct()

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns


@dataclass(frozen=True)
class Union(Plan):
    left: Plan
    right: Plan

    @property
    def children(self):
        return (self.left, self.right)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        return self.left.evaluate(catalog, ctx).union(
            self.right.evaluate(catalog, ctx))

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns


@dataclass(frozen=True)
class Extend(Plan):
    """Append a computed column (used for SELECT-clause CST formulas
    and OID functions)."""

    child: Plan
    column: str
    compute: Callable[[dict[str, Oid]], Oid]
    label: str = "expr"

    @property
    def children(self):
        return (self.child,)

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        base = self.child.evaluate(catalog, ctx)
        result = ConstraintRelation(
            base.name, base.columns + (self.column,))
        for row in base:
            value = self.compute(base.row_dict(row))
            result.add_row(row + (value,))
        return result

    @property
    def columns(self) -> tuple[str, ...]:
        return self.child.columns + (self.column,)

    def describe(self) -> str:
        return f"Extend({self.column} := {self.label})"


@dataclass(frozen=True, eq=False)
class Materialized(Plan):
    """A leaf wrapping an already-computed relation.

    Used by ``explain_analyze`` to evaluate each plan node exactly once:
    a node is re-instantiated with its children replaced by the
    materialized results of their own single evaluation.
    """

    relation: ConstraintRelation

    def evaluate(self, catalog: Catalog,
                 ctx: QueryContext | None = None) -> ConstraintRelation:
        return self.relation

    @property
    def columns(self) -> tuple[str, ...]:
        return self.relation.columns

    def describe(self) -> str:
        return f"Materialized({len(self.relation)} rows)"


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """A boolean test over a row (dict column -> oid)."""

    def __call__(self, row: dict[str, Oid]) -> bool:
        raise NotImplementedError

    @property
    def referenced_columns(self) -> frozenset[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class ColumnEq(Predicate):
    left: str
    right: str

    def __call__(self, row):
        return row[self.left] == row[self.right]

    @property
    def referenced_columns(self):
        return frozenset({self.left, self.right})

    def __str__(self):
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class ColumnLiteral(Predicate):
    column: str
    value: Oid

    def __call__(self, row):
        return row[self.column] == self.value

    @property
    def referenced_columns(self):
        return frozenset({self.column})

    def __str__(self):
        return f"{self.column} = {self.value}"


@dataclass(frozen=True)
class CstPredicate(Predicate):
    """A constraint predicate over the CST fields of a row.

    ``test`` receives the row's oids for ``columns`` (in order) and
    returns a bool; it is built by the translator from the query's
    SAT / ``|=`` formulas and closes over the constraint engine.

    ``boxers`` optionally maps a subset of ``columns`` to cheap
    bounding-box functions (cell -> box, conventions of
    :mod:`repro.sqlc.index`) carrying the *pairwise-intersective*
    contract: if the boxes of any two mapped columns are disjoint,
    ``test`` is provably false for that row.  The translator attaches
    boxers to SAT predicates over conjunctions; the optimizer uses them
    to select :class:`IndexJoin`.

    ``conjunction`` optionally exposes the predicate's *extractable*
    form to the batched numeric kernel: called with the same oids as
    ``test``, it returns a constraint object such that ``test`` is
    exactly "that constraint is satisfiable" (or raises/returns
    ``None``, in which case the row silently takes the exact row-wise
    path).  The translator attaches it to unprojected SAT predicates;
    :mod:`repro.sqlc.batch` uses it to evaluate whole filters with one
    kernel call per chunk.
    """

    columns: tuple[str, ...]
    test: Callable[..., bool]
    label: str = "cst"
    boxers: tuple[tuple[str, Callable], ...] = ()
    conjunction: Callable[..., object] | None = None

    def __call__(self, row):
        return self.test(*(row[c] for c in self.columns))

    @property
    def referenced_columns(self):
        return frozenset(self.columns)

    def __str__(self):
        return f"{self.label}({', '.join(self.columns)})"


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def __call__(self, row):
        return all(p(row) for p in self.parts)

    @property
    def referenced_columns(self):
        cols: frozenset[str] = frozenset()
        for p in self.parts:
            cols |= p.referenced_columns
        return cols

    def __str__(self):
        return " and ".join(str(p) for p in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def __call__(self, row):
        return any(p(row) for p in self.parts)

    @property
    def referenced_columns(self):
        cols: frozenset[str] = frozenset()
        for p in self.parts:
            cols |= p.referenced_columns
        return cols

    def __str__(self):
        return " or ".join(f"({p})" for p in self.parts)


@dataclass(frozen=True)
class Not(Predicate):
    part: Predicate

    def __call__(self, row):
        return not self.part(row)

    @property
    def referenced_columns(self):
        return self.part.referenced_columns

    def __str__(self):
        return f"not ({self.part})"


def is_cst(value: Oid) -> bool:
    """Helper for predicates: is the cell a constraint?"""
    return isinstance(value, CstOid)

"""Command-line interface: run LyriC against JSON databases.

    python -m repro demo
    python -m repro dump-office office.json
    python -m repro query office.json "SELECT X FROM Desk X"
    python -m repro query --office "SELECT X FROM Desk X" --translated
    python -m repro view office.json "CREATE VIEW ... " --save out.json
    python -m repro schema office.json
"""

from __future__ import annotations

import argparse
import os
import re
import sys

from repro import lyric
from repro.core.pipeline import render_trace
from repro.errors import (
    ConstraintSyntaxError,
    LyricSyntaxError,
    ReproError,
    ResourceExhausted,
    StoreCorruptError,
)
from repro.model.database import Database
from repro.model.office import (
    add_file_cabinet,
    add_regions,
    build_office_database,
)
from repro.model.serialize import read_database, save_database
from repro.runtime import (
    ConstraintCache,
    ExecutionGuard,
    ExecutionStats,
    PlanCache,
    QueryContext,
)
from repro.runtime import cache as cache_mod
from repro.storage import (
    CLEAN,
    DURABILITY_POLICIES,
    RECOVERED,
    Store,
    UNRECOVERABLE,
)

#: Exit codes: syntax problems, resource exhaustion, and store health
#: are distinguishable by scripts; every other library error is 1.
EXIT_ERROR = 1
EXIT_SYNTAX = 2
EXIT_RESOURCE = 3
#: The store opened, but recovery had to drop or repair something.
EXIT_STORE_RECOVERED = 4
#: No consistent state could be recovered at all.
EXIT_STORE_UNRECOVERABLE = 5


def _office_database() -> Database:
    db, _ = build_office_database()
    add_file_cabinet(db)
    add_regions(db)
    return db


def _load(args) -> Database:
    store_path = getattr(args, "store", None)
    if store_path:
        store = Store.open(
            store_path,
            readonly=getattr(args, "_store_readonly", True))
        args._open_store = store
        if store.report is not None \
                and store.report.state != CLEAN:
            for warning in store.report.warnings:
                print(f"store warning: {warning}", file=sys.stderr)
        return store.db
    if getattr(args, "office", False):
        return _office_database()
    if not args.database:
        raise SystemExit(
            "a database file is required (or pass --office or --store)")
    return read_database(args.database)


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}")
    return value


def _shard_count(text: str) -> int:
    value = int(text)
    if value < 2:
        raise argparse.ArgumentTypeError(
            f"needs at least 2 shards, got {text!r}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive, got {text!r}")
    return value


def _add_context_options(parser: argparse.ArgumentParser) -> None:
    """The one shared flag set every executing subcommand gets: guard
    budgets, cache, index, and parallelism — everything
    :func:`_context_from` folds into a single
    :class:`~repro.runtime.QueryContext`."""
    group = parser.add_argument_group("resource limits")
    group.add_argument("--timeout", type=_positive_float,
                       metavar="SECONDS",
                       help="wall-clock deadline for the execution")
    group.add_argument("--max-pivots", type=_positive_int, metavar="N",
                       help="exact-simplex pivot budget")
    group.add_argument("--max-branches", type=_positive_int, metavar="N",
                       help="disequality branch budget")
    group.add_argument("--max-disjuncts", type=_positive_int, metavar="N",
                       help="cap on the size of any disjunction")
    group.add_argument("--max-canonical", type=_positive_int, metavar="N",
                       help="canonicalisation work budget")
    group.add_argument("--on-exhaustion", choices=("fail", "degrade"),
                       default="fail",
                       help="on budget exhaustion: fail the query "
                            "(default) or return a partial result "
                            "with a warning")
    group = parser.add_argument_group("constraint cache")
    group.add_argument("--no-cache", action="store_true",
                       help="disable constraint-level memoization and "
                            "the interval prefilter (the A/B baseline)")
    group.add_argument("--cache-size", type=_positive_int, metavar="N",
                       help="use a fresh constraint cache of at most "
                            "N entries for this command")
    group = parser.add_argument_group("plan cache")
    group.add_argument("--no-plan-cache", action="store_true",
                       help="compile every query from scratch "
                            "(disable the compiled-plan cache)")
    group.add_argument("--plan-cache-size", type=_positive_int,
                       metavar="N",
                       help="use a fresh compiled-plan cache of at "
                            "most N entries for this command")
    group = parser.add_argument_group("execution strategy")
    group.add_argument("--parallel", type=_positive_int, metavar="N",
                       nargs="?", const=os.cpu_count() or 1, default=1,
                       help="evaluate large joins/filters with up to N "
                            "worker processes (default 1 = serial; "
                            "bare --parallel uses the CPU count; "
                            "fault-injection runs stay serial)")
    group.add_argument("--shards", type=_shard_count, metavar="N",
                       default=0,
                       help="range-partition catalog relations into N "
                            "shards with per-shard indexes maintained "
                            "at ingest, enabling scatter-gather joins "
                            "with shard-pair envelope pruning "
                            "(default 0 = monolithic; N >= 2)")
    group.add_argument("--no-index", action="store_true",
                       help="disable box-index join acceleration (the "
                            "optimizer keeps plain NaturalJoin plans)")
    group.add_argument("--no-numeric", action="store_true",
                       help="disable the batched float prefilter "
                            "(every satisfiability check runs the "
                            "exact rational simplex)")


def _context_from(args, guard: ExecutionGuard | None = None
                  ) -> QueryContext:
    """One :class:`~repro.runtime.QueryContext` from the shared CLI
    flags: ``--no-cache``/``--cache-size`` pick the cache,
    ``--no-index`` and ``--parallel`` the execution strategy, and the
    resource-limit flags the guard (``guard`` overrides when given —
    the shell derives a fresh one per statement)."""
    kwargs: dict = {
        "guard": guard if guard is not None else _guard_from(args),
        "indexing": not getattr(args, "no_index", False),
        "parallelism": getattr(args, "parallel", 1),
        "shards": getattr(args, "shards", 0),
        "stats": ExecutionStats(),
        "store": getattr(args, "_open_store", None),
    }
    if getattr(args, "no_numeric", False):
        kwargs["numeric"] = False
    if getattr(args, "no_cache", False):
        kwargs["cache"] = None
        kwargs["prefilter"] = False
    elif getattr(args, "cache_size", None) is not None:
        kwargs["cache"] = ConstraintCache(maxsize=args.cache_size)
    if getattr(args, "no_plan_cache", False):
        kwargs["plan_cache"] = None
    elif getattr(args, "plan_cache_size", None) is not None:
        kwargs["plan_cache"] = PlanCache(maxsize=args.plan_cache_size)
    return QueryContext(**kwargs)


def _cache_status(args) -> str:
    if getattr(args, "no_cache", False):
        return "cache: disabled (prefilter off)"
    size = getattr(args, "cache_size", None)
    if size is not None:
        return f"cache: fresh, size {size}"
    counters = cache_mod.get_global_cache().counters()
    return (f"cache: global, size "
            f"{cache_mod.get_global_cache().maxsize} "
            f"({counters['entries']} entries)")


def _print_analysis(stats: ExecutionStats) -> None:
    """The ``--explain --analyze`` report: per-phase timing trace plus
    the execution's cache/prefilter/index effectiveness counters."""
    print(render_trace(stats))
    print(f"cache: {stats.cache_hits} hits, "
          f"{stats.cache_misses} misses, "
          f"{stats.cache_evictions} evictions, "
          f"{stats.cache_simplex_saved} simplex solves saved")
    print(f"prefilter: {stats.box_checks} checks, "
          f"{stats.box_refutations} refutations")
    print(f"index: {stats.index_probes} probes, "
          f"{stats.candidates_pruned} pairs pruned")
    if stats.shard_joins:
        print(f"shards: {stats.shard_joins} scatter-gather joins, "
              f"{stats.shard_pairs_probed} shard pairs probed "
              f"({stats.shard_pairs_parallel} in pool workers), "
              f"{stats.shard_pairs_pruned} pruned by envelope")
    if stats.parallel_runs or stats.parallel_fallbacks:
        print(f"parallel: {stats.workers} workers, "
              f"{stats.partitions} partitions, "
              f"{stats.pool_dispatches} pool dispatches "
              f"({'cold' if stats.pool_cold_starts else 'warm'} pool), "
              f"{stats.parallel_fallbacks} serial fallbacks")
    print(f"numeric: {stats.numeric_accepts} accepts, "
          f"{stats.numeric_rejects} rejects, "
          f"{stats.numeric_fallbacks} exact fallbacks")
    print(f"plan cache: {stats.plan_cache_hits} hits, "
          f"{stats.plan_cache_misses} misses, "
          f"{stats.plan_cache_invalidations} invalidations, "
          f"{stats.plan_compile_saved * 1000:.3f} ms compile saved")


def _guard_from(args) -> ExecutionGuard | None:
    """An ExecutionGuard from the CLI flags, or None when no limit was
    requested (the zero-overhead default)."""
    limits = {
        "deadline": getattr(args, "timeout", None),
        "max_pivots": getattr(args, "max_pivots", None),
        "max_branches": getattr(args, "max_branches", None),
        "max_disjuncts": getattr(args, "max_disjuncts", None),
        "max_canonical": getattr(args, "max_canonical", None),
    }
    if all(v is None for v in limits.values()):
        return None
    return ExecutionGuard(on_exhaustion=getattr(args, "on_exhaustion",
                                                "fail"),
                          **limits)


def cmd_demo(args) -> int:
    db = _office_database()
    print(f"office database: {len(db)} objects")
    print(db.schema)
    result = lyric.query(db, """
        SELECT CO, ((u,v) | E and D and x = 6 and y = 4)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
    """)
    print("\nSELECT CO, ((u,v) | E and D and x = 6 and y = 4) ...")
    print(result.pretty())
    return 0


def cmd_dump_office(args) -> int:
    save_database(_office_database(), args.path)
    print(f"wrote {args.path}")
    return 0


def cmd_query(args) -> int:
    db = _load(args)
    text = args.query
    if text == "-":
        text = sys.stdin.read()
    ctx = _context_from(args)
    if args.explain:
        if args.analyze:
            print(lyric.explain(db, text, analyze=True, ctx=ctx))
            _print_analysis(ctx.stats)
        else:
            print(lyric.explain(db, text, ctx=ctx))
        print(_cache_status(args))
        return 0
    if args.translated:
        result = lyric.query_translated(db, text, ctx=ctx)
    else:
        result = lyric.query(db, text, ctx=ctx)
    print(result.pretty(limit=args.limit))
    print(f"({len(result)} rows)")
    return 0


def cmd_shell(args) -> int:
    """A line-oriented REPL: statements end with ';'."""
    db = _load(args)
    print(f"LyriC shell — {len(db)} objects; "
          "end statements with ';', 'quit;' exits")
    buffer: list[str] = []
    stream = sys.stdin
    _shell_loop(db, args, buffer, stream)
    return 0


_PREPARE_RE = re.compile(
    r"^prepare\s+([A-Za-z_]\w*)\s+as\s+(.+)$",
    re.IGNORECASE | re.DOTALL)
_EXECUTE_RE = re.compile(
    r"^execute\s+([A-Za-z_]\w*)\s*(?:\((.*)\))?\s*$",
    re.IGNORECASE | re.DOTALL)


def _execute_bindings(args_text: str | None,
                      param_names: tuple[str, ...]) -> dict:
    """EXECUTE argument list -> parameter bindings.

    Arguments are positional (mapped onto the prepared query's
    parameter order) or named (``p = 3`` / ``$p = 3``); values are
    numbers, quoted strings, or bare identifiers (symbolic oids).
    """
    from fractions import Fraction

    from repro.core.lexer import tokenize
    from repro.errors import LyricSyntaxError
    from repro.model.oid import LiteralOid, SymbolicOid

    bindings: dict = {}
    positional: list = []
    if args_text and args_text.strip():
        tokens = tokenize(args_text)
        i = 0

        def value_at(i: int):
            token = tokens[i]
            if token.kind == "number":
                return LiteralOid(Fraction(token.value)), i + 1
            if token.kind == "symbol" and token.value == "-" \
                    and tokens[i + 1].kind == "number":
                return LiteralOid(-Fraction(tokens[i + 1].value)), i + 2
            if token.kind == "string":
                return LiteralOid(token.value), i + 1
            if token.kind in ("ident", "kw"):
                return SymbolicOid(token.value), i + 1
            raise LyricSyntaxError(
                f"EXECUTE argument: unexpected {token.value or token.kind!r}")

        while tokens[i].kind != "eof":
            token = tokens[i]
            if token.kind in ("ident", "param") \
                    and tokens[i + 1].kind == "symbol" \
                    and tokens[i + 1].value == "=":
                value, i = value_at(i + 2)
                bindings[token.value] = value
            else:
                value, i = value_at(i)
                positional.append(value)
            if tokens[i].kind == "symbol" and tokens[i].value == ",":
                i += 1
            elif tokens[i].kind != "eof":
                raise LyricSyntaxError(
                    "EXECUTE arguments must be comma-separated")
    if len(positional) > len(param_names):
        raise LyricSyntaxError(
            f"EXECUTE: {len(positional)} positional arguments for "
            f"{len(param_names)} parameters")
    for name, value in zip(param_names, positional):
        bindings.setdefault(name, value)
    unknown = set(bindings) - set(param_names)
    if unknown:
        raise LyricSyntaxError(
            "EXECUTE: unknown parameters "
            + ", ".join(f"${n}" for n in sorted(unknown)))
    return bindings


def _shell_loop(db: Database, args, buffer: list[str], stream) -> None:
    prepared: dict[str, lyric.PreparedQuery] = {}
    while True:
        try:
            line = stream.readline()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            break
        if not line:
            break
        buffer.append(line)
        if ";" not in line:
            continue
        text = "".join(buffer).strip().rstrip(";").strip()
        buffer = []
        if not text:
            continue
        if text.lower() in ("quit", "exit"):
            break
        try:
            # A fresh guard per statement: one exhausted query must not
            # poison the budgets of the next.
            ctx = _context_from(args, guard=_guard_from(args))
            prepare_match = _PREPARE_RE.match(text)
            execute_match = _EXECUTE_RE.match(text)
            if prepare_match:
                name = prepare_match.group(1)
                prepared[name] = lyric.prepare(db,
                                               prepare_match.group(2))
                slots = prepared[name].params
                suffix = (" (parameters: "
                          + ", ".join(f"${p}" for p in slots) + ")"
                          if slots else "")
                print(f"prepared {name}{suffix}")
            elif execute_match:
                name = execute_match.group(1)
                statement = prepared.get(name)
                if statement is None:
                    print(f"error: no prepared query {name!r}",
                          file=sys.stderr)
                    continue
                bindings = _execute_bindings(execute_match.group(2),
                                             statement.params)
                result = statement.run(db, ctx=ctx, params=bindings)
                print(result.pretty())
                print(f"({len(result)} rows)")
            elif text.lower().startswith("create"):
                created = lyric.view(db, text, ctx=ctx)
                for name in created.classes:
                    members = created.instances.get(name, [])
                    print(f"{name}: {len(members)} instances")
            else:
                result = lyric.query(db, text, ctx=ctx)
                print(result.pretty())
                print(f"({len(result)} rows)")
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)


def cmd_view(args) -> int:
    db = _load(args)
    text = args.view
    if text == "-":
        text = sys.stdin.read()
    created = lyric.view(db, text, ctx=_context_from(args))
    for class_name in created.classes:
        members = created.instances.get(class_name, [])
        print(f"{class_name}: {len(members)} instances")
    if args.save:
        save_database(db, args.save)
        print(f"wrote {args.save}")
    return 0


def cmd_schema(args) -> int:
    db = _load(args)
    print(db.schema)
    return 0


# ---------------------------------------------------------------------------
# Durable store verbs
# ---------------------------------------------------------------------------


def cmd_db_save(args) -> int:
    """Create a durable store directory from a JSON database (or the
    built-in office database)."""
    db = _load(args)
    store = Store.create(args.store_dir, db=db,
                         durability=args.durability)
    try:
        print(f"created store {args.store_dir} "
              f"(generation {store.generation}, {len(db)} objects, "
              f"durability {store.durability})")
    finally:
        store.close()
    return 0


def cmd_db_load(args) -> int:
    """Recover a store read-only and report what came back.

    Exit 0 when the store is clean, {EXIT_STORE_RECOVERED} when
    recovery dropped or repaired something,
    {EXIT_STORE_UNRECOVERABLE} when no consistent state exists.
    """
    store = Store.open(args.store_dir, readonly=True)
    try:
        report = store.report
        print(f"{len(store.db)} objects, "
              f"{len(store.relations)} relations")
        assert report is not None
        print(report.describe())
    finally:
        store.close()
    return EXIT_STORE_RECOVERED if report.state == RECOVERED else 0


def cmd_db_verify(args) -> int:
    """Dry-run recovery: replay everything, touch nothing, exit with
    the store's health (0 clean / {EXIT_STORE_RECOVERED} recovered /
    {EXIT_STORE_UNRECOVERABLE} unrecoverable)."""
    report = Store.verify(args.store_dir)
    print(report.describe())
    return {CLEAN: 0, RECOVERED: EXIT_STORE_RECOVERED,
            UNRECOVERABLE: EXIT_STORE_UNRECOVERABLE}[report.state]


def cmd_db_snapshot(args) -> int:
    """Open a store writable, compact its WAL into a fresh snapshot
    generation, and prune old generations."""
    store = Store.open(args.store_dir, durability=args.durability)
    try:
        generation = store.snapshot()
        print(f"snapshot generation {generation} "
              f"({len(store.db)} objects)")
        state = store.report.state if store.report else CLEAN
    finally:
        store.close()
    return EXIT_STORE_RECOVERED if state == RECOVERED else 0


# ---------------------------------------------------------------------------
# The query server
# ---------------------------------------------------------------------------


def cmd_serve(args) -> int:
    """Serve the database over TCP (framed JSON + telnet line mode)."""
    import asyncio
    import json
    import signal

    from repro.server import LyricServer, QueryService, ServerLimits

    db = _load(args)
    store = getattr(args, "_open_store", None)
    limits = ServerLimits(
        deadline=args.guard_timeout,
        max_pivots=args.guard_max_pivots,
        max_branches=args.guard_max_branches,
        max_disjuncts=args.guard_max_disjuncts,
        max_canonical=args.guard_max_canonical,
        max_workers=args.max_workers)
    service = QueryService(db, store=store, limits=limits,
                           executor_threads=args.executor_threads,
                           executor=args.executor)
    server = LyricServer(service, host=args.host, port=args.port,
                         max_sessions=args.max_sessions,
                         drain_timeout=args.drain_timeout)
    if args.warm_pool:
        warmed = service.warm_pool()
        if warmed:
            print(f"warmed {warmed} pool workers", flush=True)

    async def serve() -> None:
        await server.start()
        # Scraped by scripts and the CI smoke test: the actual bound
        # port (``--port 0`` lets the OS pick).
        print(f"listening on {server.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()

        def request_shutdown() -> None:
            asyncio.ensure_future(server.shutdown())

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, request_shutdown)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix event loops
        await server.wait_closed()

    asyncio.run(serve())
    if args.dump_stats_on_exit:
        print(json.dumps(service.stats.snapshot(), indent=2,
                         sort_keys=True))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LyriC constraint-object queries "
                    "(Brodsky & Kornatzky, SIGMOD 1995)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run the paper's worked example")
    demo.set_defaults(fn=cmd_demo)

    dump = sub.add_parser("dump-office",
                          help="write the office database as JSON")
    dump.add_argument("path")
    dump.set_defaults(fn=cmd_dump_office)

    query = sub.add_parser("query", help="evaluate a LyriC query")
    query.add_argument("database", nargs="?",
                       help="JSON database file")
    query.add_argument("query", help="query text, or - for stdin")
    query.add_argument("--office", action="store_true",
                       help="use the built-in office database")
    query.add_argument("--store", metavar="DIR",
                       help="read the database from a durable store "
                            "directory (opened read-only)")
    query.add_argument("--translated", action="store_true",
                       help="evaluate via the Section 5 translation")
    query.add_argument("--explain", action="store_true",
                       help="print the translated plan instead of "
                            "evaluating")
    query.add_argument("--analyze", action="store_true",
                       help="with --explain: execute the plan and "
                            "annotate each node with row counts and "
                            "cache statistics")
    query.add_argument("--limit", type=int, default=20,
                       help="rows to print")
    _add_context_options(query)
    query.set_defaults(fn=cmd_query)

    shell = sub.add_parser("shell", help="interactive LyriC shell")
    shell.add_argument("database", nargs="?")
    shell.add_argument("--office", action="store_true")
    shell.add_argument("--store", metavar="DIR",
                       help="work against a durable store directory "
                            "(mutations are write-ahead logged)")
    _add_context_options(shell)
    shell.set_defaults(fn=cmd_shell, _store_readonly=False)

    view = sub.add_parser("view", help="execute a CREATE VIEW")
    view.add_argument("database", nargs="?")
    view.add_argument("view", help="view text, or - for stdin")
    view.add_argument("--office", action="store_true")
    view.add_argument("--store", metavar="DIR",
                      help="work against a durable store directory "
                           "(created views are write-ahead logged)")
    view.add_argument("--save", help="write the updated database here")
    _add_context_options(view)
    view.set_defaults(fn=cmd_view, _store_readonly=False)

    schema = sub.add_parser("schema", help="print a database's schema")
    schema.add_argument("database", nargs="?")
    schema.add_argument("--office", action="store_true")
    schema.add_argument("--store", metavar="DIR",
                        help="read the schema from a durable store")
    schema.set_defaults(fn=cmd_schema)

    serve = sub.add_parser(
        "serve", help="serve the database over TCP (framed JSON "
                      "protocol; telnet-friendly line mode)")
    serve.add_argument("database", nargs="?",
                       help="JSON database file")
    serve.add_argument("--office", action="store_true",
                       help="serve the built-in office database")
    serve.add_argument("--store", metavar="DIR",
                       help="serve a durable store directory "
                            "(opened writable; CREATE VIEW is "
                            "write-ahead logged)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7407,
                       help="TCP port (0 = let the OS pick; the "
                            "bound port is printed)")
    serve.add_argument("--max-sessions", type=_positive_int,
                       default=64,
                       help="concurrent connection limit (excess "
                            "connections get a max_sessions error "
                            "frame)")
    serve.add_argument("--drain-timeout", type=_positive_float,
                       default=5.0, metavar="SECONDS",
                       help="graceful-shutdown drain window before "
                            "in-flight queries are cancelled")
    serve.add_argument("--executor-threads", type=_positive_int,
                       default=8,
                       help="worker threads executing query bodies")
    serve.add_argument("--executor",
                       choices=("auto", "thread", "process"),
                       default="auto",
                       help="query executor: 'process' runs picklable "
                            "requests in worker pool processes (true "
                            "parallelism for distinct-query load); "
                            "'auto' picks process on multi-core fork "
                            "platforms")
    serve.add_argument("--warm-pool", action="store_true",
                       help="pre-fork the worker pool at startup so "
                            "the first process-executed request skips "
                            "the cold start")
    serve.add_argument("--max-workers", type=_positive_int,
                       default=None, metavar="N",
                       help="cap concurrent process-executor workers "
                            "(excess requests take the thread path)")
    serve.add_argument("--dump-stats-on-exit", action="store_true",
                       help="print the aggregate service statistics "
                            "as JSON after shutdown")
    guards = serve.add_argument_group(
        "server-side guard caps (per-request budgets are the "
        "smaller of the client's request and these)")
    guards.add_argument("--guard-timeout", type=_positive_float,
                        metavar="SECONDS", default=None)
    guards.add_argument("--guard-max-pivots", type=_positive_int,
                        metavar="N", default=None)
    guards.add_argument("--guard-max-branches", type=_positive_int,
                        metavar="N", default=None)
    guards.add_argument("--guard-max-disjuncts", type=_positive_int,
                        metavar="N", default=None)
    guards.add_argument("--guard-max-canonical", type=_positive_int,
                        metavar="N", default=None)
    serve.set_defaults(fn=cmd_serve, _store_readonly=False)

    dbp = sub.add_parser(
        "db", help="durable store operations (save / load / verify / "
                   "snapshot)")
    dbsub = dbp.add_subparsers(dest="db_command", required=True)

    save = dbsub.add_parser(
        "save", help="create a durable store from a database")
    save.add_argument("store_dir", help="store directory to create")
    save.add_argument("database", nargs="?",
                      help="JSON database file")
    save.add_argument("--office", action="store_true",
                      help="use the built-in office database")
    save.add_argument("--durability", choices=DURABILITY_POLICIES,
                      default="batch",
                      help="fsync policy for the store's WAL "
                           "(default: batch)")
    save.set_defaults(fn=cmd_db_save)

    load = dbsub.add_parser(
        "load", help="recover a store and report what came back")
    load.add_argument("store_dir")
    load.set_defaults(fn=cmd_db_load)

    verify = dbsub.add_parser(
        "verify", help="dry-run recovery; exit 0 clean, "
                       f"{EXIT_STORE_RECOVERED} recovered, "
                       f"{EXIT_STORE_UNRECOVERABLE} unrecoverable")
    verify.add_argument("store_dir")
    verify.set_defaults(fn=cmd_db_verify)

    snapshot = dbsub.add_parser(
        "snapshot", help="compact a store's WAL into a new snapshot "
                         "generation")
    snapshot.add_argument("store_dir")
    snapshot.add_argument("--durability", choices=DURABILITY_POLICIES,
                          default="batch")
    snapshot.set_defaults(fn=cmd_db_snapshot)

    return parser


def _expand_bare_parallel(argv: list[str]) -> list[str]:
    """``--parallel`` takes an optional worker count, but argparse's
    ``nargs="?"`` would greedily consume a following positional (the
    query text).  Pin the value explicitly unless the next token really
    is a count, so ``--parallel "SELECT ..."`` means "all cores"."""
    expanded = []
    for i, token in enumerate(argv):
        expanded.append(token)
        if token == "--parallel":
            following = argv[i + 1] if i + 1 < len(argv) else None
            if following is None or not following.isdigit():
                expanded[-1] = f"--parallel={os.cpu_count() or 1}"
    return expanded


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(_expand_bare_parallel(
        sys.argv[1:] if argv is None else list(argv)))
    try:
        return args.fn(args)
    except (LyricSyntaxError, ConstraintSyntaxError) as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return EXIT_SYNTAX
    except ResourceExhausted as exc:
        print(f"resource limit: {exc}", file=sys.stderr)
        return EXIT_RESOURCE
    except StoreCorruptError as exc:
        print(f"store unrecoverable: {exc}", file=sys.stderr)
        return EXIT_STORE_UNRECOVERABLE
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    finally:
        store = getattr(args, "_open_store", None)
        if store is not None:
            store.close()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

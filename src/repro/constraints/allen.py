"""Allen's interval relations over one-dimensional CST objects.

The temporal half of the paper's CST framework: a 1-D constraint object
whose point set is a bounded interval supports the thirteen basic
relations of Allen's interval algebra (before, meets, overlaps, starts,
during, finishes, equals, and their inverses).  Endpoints come from the
exact LP bounds, so the classification is exact for closed bounded
intervals.

For 1-D objects that are *unions* of intervals,
:func:`normalize_intervals` produces the sorted list of maximal
disjoint closed intervals — the canonical temporal form (cf. the
linear-repeating-points literature the paper cites for infinite
temporal data; we handle the finite-union case).
"""

from __future__ import annotations

import enum
from fractions import Fraction

from repro.constraints.cst_object import CSTObject
from repro.errors import ConstraintError, DimensionError


class AllenRelation(enum.Enum):
    """The thirteen basic relations of Allen's interval algebra."""

    BEFORE = "before"
    AFTER = "after"
    MEETS = "meets"
    MET_BY = "met-by"
    OVERLAPS = "overlaps"
    OVERLAPPED_BY = "overlapped-by"
    STARTS = "starts"
    STARTED_BY = "started-by"
    DURING = "during"
    CONTAINS = "contains"
    FINISHES = "finishes"
    FINISHED_BY = "finished-by"
    EQUAL = "equal"

    @property
    def inverse(self) -> "AllenRelation":
        pairs = {
            AllenRelation.BEFORE: AllenRelation.AFTER,
            AllenRelation.MEETS: AllenRelation.MET_BY,
            AllenRelation.OVERLAPS: AllenRelation.OVERLAPPED_BY,
            AllenRelation.STARTS: AllenRelation.STARTED_BY,
            AllenRelation.DURING: AllenRelation.CONTAINS,
            AllenRelation.FINISHES: AllenRelation.FINISHED_BY,
            AllenRelation.EQUAL: AllenRelation.EQUAL,
        }
        inverse = dict(pairs)
        inverse.update({v: k for k, v in pairs.items()})
        return inverse[self]


def interval_of(obj: CSTObject) -> tuple[Fraction, Fraction]:
    """The closed bounded interval [lo, hi] of a 1-D CST object.

    Raises :class:`ConstraintError` for empty, unbounded or
    non-interval (gapped) point sets and :class:`DimensionError` for
    higher dimensions.
    """
    if obj.dimension != 1:
        raise DimensionError("Allen relations need 1-D objects")
    if not obj.is_satisfiable():
        raise ConstraintError("empty interval")
    intervals = normalize_intervals(obj)
    if len(intervals) != 1:
        raise ConstraintError(
            f"point set is a union of {len(intervals)} intervals, "
            "not a single interval")
    return intervals[0]


def normalize_intervals(obj: CSTObject
                        ) -> list[tuple[Fraction, Fraction]]:
    """The object's point set as sorted maximal disjoint closed
    intervals (strictness is closed over, per interval hulls)."""
    if obj.dimension != 1:
        raise DimensionError("interval normalization needs 1-D objects")
    raw: list[tuple[Fraction, Fraction]] = []
    from repro.constraints import lp
    for conj in obj._flat_disjuncts():
        lo = lp.minimize(obj.schema[0], conj)
        hi = lp.maximize(obj.schema[0], conj)
        if lo.is_infeasible or hi.is_infeasible:
            continue
        if not (lo.is_optimal and hi.is_optimal):
            raise ConstraintError("unbounded interval")
        raw.append((lo.value, hi.value))
    raw.sort()
    merged: list[tuple[Fraction, Fraction]] = []
    for lo, hi in raw:
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


def relation(a: CSTObject, b: CSTObject) -> AllenRelation:
    """The unique basic Allen relation between two proper intervals.

    Point intervals (lo = hi) are accepted; the classification follows
    the standard endpoint comparisons.
    """
    a_lo, a_hi = interval_of(a)
    b_lo, b_hi = interval_of(b)

    if a_hi < b_lo:
        return AllenRelation.BEFORE
    if b_hi < a_lo:
        return AllenRelation.AFTER
    if a_lo == b_lo and a_hi == b_hi:
        return AllenRelation.EQUAL
    if a_hi == b_lo:
        return AllenRelation.MEETS
    if b_hi == a_lo:
        return AllenRelation.MET_BY
    if a_lo == b_lo:
        return AllenRelation.STARTS if a_hi < b_hi \
            else AllenRelation.STARTED_BY
    if a_hi == b_hi:
        return AllenRelation.FINISHES if a_lo > b_lo \
            else AllenRelation.FINISHED_BY
    if b_lo < a_lo and a_hi < b_hi:
        return AllenRelation.DURING
    if a_lo < b_lo and b_hi < a_hi:
        return AllenRelation.CONTAINS
    if a_lo < b_lo:
        return AllenRelation.OVERLAPS
    return AllenRelation.OVERLAPPED_BY


def holds(a: CSTObject, b: CSTObject, wanted: AllenRelation) -> bool:
    """Does the given relation hold between the two intervals?"""
    return relation(a, b) is wanted

"""The linear-constraint engine substrate.

Implements Section 3 of Brodsky & Kornatzky (SIGMOD 1995): linear
arithmetic constraint atoms, the four constraint families (conjunctive,
existential conjunctive, disjunctive, disjunctive existential), their
canonical forms, satisfiability, entailment (``|=``), restricted and
full projection, and the linear-programming operators.

Public entry points are re-exported here; submodules remain importable
for the finer-grained APIs.
"""

from repro.constraints.allen import AllenRelation, relation as allen_relation
from repro.constraints.atoms import (
    Eq,
    Ge,
    Gt,
    Le,
    LinearConstraint,
    Lt,
    Ne,
    Relop,
)
from repro.constraints.filtering import BoxIndex, overlap_join
from repro.constraints.canonical import canonical_key, canonicalize
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.families import Family, classify
from repro.constraints.lp import (
    OptimizationResult,
    max_value,
    maximize,
    min_value,
    minimize,
)
from repro.constraints.parser import parse_constraint, parse_cst
from repro.constraints.projection import (
    eliminate_variable,
    project_conjunctive,
    restricted_project,
)
from repro.constraints.simplex import LPResult, LPStatus, solve
from repro.constraints.terms import (
    LinearExpression,
    Variable,
    variables,
)

__all__ = [
    "AllenRelation",
    "BoxIndex",
    "CSTObject",
    "ConjunctiveConstraint",
    "DisjunctiveConstraint",
    "DisjunctiveExistentialConstraint",
    "Eq",
    "ExistentialConjunctiveConstraint",
    "Family",
    "Ge",
    "Gt",
    "LPResult",
    "LPStatus",
    "Le",
    "LinearConstraint",
    "LinearExpression",
    "Lt",
    "Ne",
    "OptimizationResult",
    "Relop",
    "Variable",
    "allen_relation",
    "canonical_key",
    "canonicalize",
    "classify",
    "eliminate_variable",
    "max_value",
    "maximize",
    "min_value",
    "minimize",
    "overlap_join",
    "parse_constraint",
    "parse_cst",
    "project_conjunctive",
    "restricted_project",
    "solve",
    "variables",
]

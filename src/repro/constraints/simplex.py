"""Exact two-phase simplex over rational numbers.

This is the LP workhorse behind satisfiability checking, entailment, the
paper's ``MAX/MIN ... SUBJECT TO`` operators, and redundancy removal in
canonical forms.  Exactness matters: the logical identity of a CST object
is its canonical form, which must not depend on floating-point rounding.

The solver accepts the problem in the natural form used by the rest of
the engine::

    maximize  c . x
    subject   a_i . x <= b_i      (inequalities)
              e_j . x  = d_j      (equalities)
              x free (unrestricted in sign)

Free variables are handled by the standard split ``x = x+ - x-``; a
Phase-I run with artificial variables establishes feasibility; Bland's
rule guarantees termination.  Results carry an optimal point so that
``MAX_POINT``/``MIN_POINT`` fall out directly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from repro.errors import ConstraintError
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.terms import LinearExpression, Variable
from repro.runtime import context as context_mod
from repro.runtime.context import QueryContext
from repro.runtime.guard import ExecutionGuard


#: Process-wide count of :func:`solve` invocations.  **Deprecated
#: shim**: per-execution accounting lives in
#: ``ExecutionStats.simplex_solves`` (which the memoization layer now
#: samples to price cached entries, and which survives parallel worker
#: round-trips via the generic stats merge); this global remains only
#: for callers that want a process-wide total.
_TOTAL_CALLS = 0


def call_count() -> int:
    """Total exact-simplex solves since interpreter start.

    Deprecated: prefer ``ctx.stats.simplex_solves``, the per-context
    account (this global keeps counting, but mixes every context's
    work and double-counts nothing only in single-context processes).
    """
    return _TOTAL_CALLS


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Outcome of a linear program.

    ``value`` and ``point`` are only meaningful when ``status`` is
    ``OPTIMAL``.  ``point`` binds every variable of the problem.
    """

    status: LPStatus
    value: Fraction | None = None
    point: Mapping[Variable, Fraction] | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status is LPStatus.OPTIMAL

    @property
    def is_infeasible(self) -> bool:
        return self.status is LPStatus.INFEASIBLE

    @property
    def is_unbounded(self) -> bool:
        return self.status is LPStatus.UNBOUNDED


def solve(objective: LinearExpression,
          constraints: Sequence[LinearConstraint],
          maximize: bool = True,
          ctx: QueryContext | None = None) -> LPResult:
    """Solve ``max/min objective`` subject to non-strict ``constraints``.

    Only ``<=`` and ``=`` atoms are accepted (the normal form of the atom
    layer); strict and disequality atoms must be handled by the caller
    (see :mod:`repro.constraints.satisfiability`).  Budget governance
    comes from ``ctx``'s guard (ambient context when not given).
    """
    for atom in constraints:
        if atom.relop not in (Relop.LE, Relop.EQ):
            raise ConstraintError(
                f"simplex accepts only <= and = atoms, got {atom}")
    global _TOTAL_CALLS
    _TOTAL_CALLS += 1
    resolved = context_mod.resolve(ctx)
    resolved.stats.simplex_solves += 1
    guard = resolved.guard
    if guard is not None:
        guard.enter_simplex()
    objective = LinearExpression.coerce(objective)
    problem = _StandardForm(objective, constraints, maximize, guard)
    return problem.solve()


def feasible_point(constraints: Sequence[LinearConstraint],
                   ctx: QueryContext | None = None
                   ) -> Mapping[Variable, Fraction] | None:
    """A point satisfying the non-strict system, or None if infeasible."""
    result = solve(LinearExpression.constant(0), constraints, ctx=ctx)
    if result.is_optimal:
        return result.point
    return None


class _StandardForm:
    """Dense-tableau two-phase simplex in standard form.

    Free variables are split; rows are ``A x (+ slack) = b`` with
    ``b >= 0`` after sign fixing; Bland's anti-cycling rule is used for
    both entering and leaving choices.
    """

    def __init__(self, objective: LinearExpression,
                 constraints: Sequence[LinearConstraint],
                 maximize: bool,
                 guard: ExecutionGuard | None = None):
        self.maximize = maximize
        self._guard = guard
        self.objective = objective if maximize else -objective
        var_set: set[Variable] = set(objective.variables)
        for atom in constraints:
            var_set.update(atom.variables)
        self.variables: list[Variable] = sorted(var_set, key=lambda v: v.name)
        self.var_index = {v: i for i, v in enumerate(self.variables)}
        self.constraints = list(constraints)

    # Column layout: for each original variable v_i two columns (plus,
    # minus); then one slack column per inequality row; artificials are
    # appended by Phase I only.

    def solve(self) -> LPResult:
        n_vars = len(self.variables)
        n_rows = len(self.constraints)
        n_ineq = sum(1 for a in self.constraints if a.relop is Relop.LE)
        n_cols = 2 * n_vars + n_ineq

        rows: list[list[Fraction]] = []
        rhs: list[Fraction] = []
        slack_seen = 0
        zero = Fraction(0)
        for atom in self.constraints:
            row = [zero] * n_cols
            for var, coeff in atom.expression.coefficients.items():
                j = self.var_index[var]
                row[2 * j] = coeff
                row[2 * j + 1] = -coeff
            b = atom.bound
            if atom.relop is Relop.LE:
                row[2 * n_vars + slack_seen] = Fraction(1)
                slack_seen += 1
            if b < 0:
                row = [-c for c in row]
                b = -b
            rows.append(row)
            rhs.append(b)

        # Objective over split variables (Phase II costs).
        cost = [zero] * n_cols
        for var, coeff in self.objective.coefficients.items():
            j = self.var_index[var]
            cost[2 * j] = coeff
            cost[2 * j + 1] = -coeff

        basis, rows, rhs, n_cols = self._phase_one(rows, rhs, n_cols, n_rows)
        if basis is None:
            return LPResult(LPStatus.INFEASIBLE)

        status, value, solution = self._phase_two(
            rows, rhs, basis, cost, n_cols)
        if status is LPStatus.UNBOUNDED:
            return LPResult(LPStatus.UNBOUNDED)

        point: dict[Variable, Fraction] = {}
        for var, j in self.var_index.items():
            point[var] = solution[2 * j] - solution[2 * j + 1]
        objective_value = value + self.objective.constant_term
        if not self.maximize:
            objective_value = -objective_value
        return LPResult(LPStatus.OPTIMAL, objective_value, point)

    # -- phase I -----------------------------------------------------------

    def _phase_one(self, rows, rhs, n_cols, n_rows):
        """Drive artificial variables out; returns (basis, rows, rhs, n_cols)
        or (None, ...) when infeasible."""
        zero = Fraction(0)
        one = Fraction(1)
        total_cols = n_cols + n_rows
        for i, row in enumerate(rows):
            row.extend(one if k == i else zero for k in range(n_rows))
        basis = [n_cols + i for i in range(n_rows)]

        # Phase-I objective: minimize sum of artificials, run as
        # "maximize -sum".  With the artificial basis (cost -1 each),
        # the reduced cost of column j is z_j - c_j where
        # z_j = -sum_i rows[i][j] and c_j is -1 for artificial columns,
        # 0 otherwise.  The starting objective value is -sum(rhs).
        col_sums = [zero] * total_cols
        obj_val = zero
        for i in range(n_rows):
            row_i = rows[i]
            for j in range(total_cols):
                if row_i[j] != 0:
                    col_sums[j] += row_i[j]
            obj_val += rhs[i]
        reduced = [-col_sums[j] for j in range(total_cols)]
        for j in range(n_cols, total_cols):
            reduced[j] += 1

        basis, value = self._iterate(rows, rhs, basis, reduced, -obj_val,
                                     total_cols)
        if value != 0:
            return None, rows, rhs, n_cols

        # Pivot remaining artificial basics out where possible.
        for i in range(n_rows):
            if basis[i] >= n_cols:
                pivot_col = next(
                    (j for j in range(n_cols) if rows[i][j] != 0), None)
                if pivot_col is not None:
                    self._pivot(rows, rhs, None, i, pivot_col)
                    basis[i] = pivot_col
        # Degenerate all-zero artificial rows are redundant; they stay with
        # an artificial basic at value 0 and are harmless, but we drop the
        # artificial columns from consideration by truncating each row.
        for row in rows:
            del row[n_cols:]
        return basis, rows, rhs, n_cols

    # -- phase II ------------------------------------------------------------

    def _phase_two(self, rows, rhs, basis, cost, n_cols):
        zero = Fraction(0)
        n_rows = len(rows)
        # Remove rows whose basic variable is still artificial (index out of
        # range after truncation): they are all-zero redundant rows.
        keep = [i for i in range(n_rows) if basis[i] < n_cols]
        rows = [rows[i] for i in keep]
        rhs = [rhs[i] for i in keep]
        basis = [basis[i] for i in keep]
        n_rows = len(rows)

        # Reduced costs: c_B B^-1 A - c  (tableau already in B^-1 A form).
        reduced = [-cost[j] for j in range(n_cols)]
        value = zero
        for i in range(n_rows):
            cb = cost[basis[i]]
            if cb != 0:
                for j in range(n_cols):
                    if rows[i][j] != 0:
                        reduced[j] += cb * rows[i][j]
                value += cb * rhs[i]

        result = self._iterate(rows, rhs, basis, reduced, value, n_cols,
                               detect_unbounded=True)
        if result is None:
            return LPStatus.UNBOUNDED, None, None
        basis, value = result

        solution = [zero] * n_cols
        for i, b in enumerate(basis):
            solution[b] = rhs[i]
        return LPStatus.OPTIMAL, value, solution

    # -- core pivoting ----------------------------------------------------------

    def _iterate(self, rows, rhs, basis, reduced, value, n_cols,
                 detect_unbounded: bool = False):
        """Run simplex iterations (maximization).

        ``reduced[j]`` holds ``z_j - c_j``; a column with ``reduced < 0``
        improves the objective.  Bland's rule: smallest improving column,
        smallest-index tie-break on the ratio test.
        Returns (basis, value); or None when unbounded (only if
        ``detect_unbounded``, Phase I cannot be unbounded).
        """
        n_rows = len(rows)
        guard = self._guard
        while True:
            entering = next(
                (j for j in range(n_cols) if reduced[j] < 0), None)
            if entering is None:
                return basis, value
            # Ratio test.
            leaving = None
            best_ratio: Fraction | None = None
            for i in range(n_rows):
                coeff = rows[i][entering]
                if coeff > 0:
                    ratio = rhs[i] / coeff
                    if (best_ratio is None or ratio < best_ratio
                            or (ratio == best_ratio
                                and basis[i] < basis[leaving])):
                        best_ratio = ratio
                        leaving = i
            if leaving is None:
                if detect_unbounded:
                    return None
                raise ConstraintError("phase-I simplex reported unbounded")
            if guard is not None:
                guard.tick_pivots()
            value += (-reduced[entering]) * best_ratio
            self._pivot(rows, rhs, reduced, leaving, entering)
            basis[leaving] = entering

    @staticmethod
    def _pivot(rows, rhs, reduced, pivot_row: int, pivot_col: int) -> None:
        """Gauss-Jordan pivot on (pivot_row, pivot_col)."""
        n_cols = len(rows[pivot_row])
        pivot = rows[pivot_row][pivot_col]
        inv = Fraction(1) / pivot
        row = rows[pivot_row]
        for j in range(n_cols):
            if row[j] != 0:
                row[j] *= inv
        rhs[pivot_row] *= inv
        for i, other in enumerate(rows):
            if i == pivot_row:
                continue
            factor = other[pivot_col]
            if factor != 0:
                for j in range(n_cols):
                    if row[j] != 0:
                        other[j] -= factor * row[j]
                rhs[i] -= factor * rhs[pivot_row]
        if reduced is not None:
            factor = reduced[pivot_col]
            if factor != 0:
                for j in range(n_cols):
                    if row[j] != 0:
                        reduced[j] -= factor * row[j]

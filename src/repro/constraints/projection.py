"""Projection (existential quantification) by Fourier-Motzkin elimination.

Section 3.1 of the paper defines projection ``((x1..xn) | phi)`` — a
variant of the existential quantifier that lists the *free* variables —
and restricts it on the conjunctive and disjunctive families to
eliminating **one**, or **all but one**, of the free variables of ``phi``
per application ("restricted quantifier elimination"), so each step is
polynomial.  Unrestricted elimination exists for existential-conjunctive
formulas, where quantifiers may instead be kept symbolic.

This module implements:

* :func:`eliminate_variable` — one Fourier-Motzkin step on a conjunction,
* :func:`project_conjunctive` — eliminate an arbitrary set of variables
  eagerly (used for unrestricted/symbolic-free evaluation),
* :func:`restricted_project` — the paper's checked operator, raising
  :class:`ConstraintFamilyError` when more than one and fewer than
  all-but-one variables would be eliminated.

Equalities are substituted out first (Gaussian elimination), which both
shortens FM runs and keeps intermediate growth down; redundant derived
atoms are pruned with cheap syntactic checks plus an optional LP-based
pass used by the canonical former.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConstraintFamilyError
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.terms import LinearExpression, Variable


def eliminate_variable(conj: ConjunctiveConstraint, var: Variable
                       ) -> ConjunctiveConstraint:
    """One Fourier-Motzkin step: ``exists var . conj``.

    Requires that ``var`` does not occur in any disequality atom — over
    the reals ``exists x (phi and e(x) != b)`` is not in general a
    conjunction; route such formulas through the disjunctive family
    (split the disequality first).
    """
    for atom in conj.disequalities():
        if var in atom.variables:
            raise ConstraintFamilyError(
                f"cannot eliminate {var} from disequality {atom}; split "
                "the disequality into a disjunction first")

    # Substitute the variable away through an equality when one exists —
    # exact and produces no quadratic atom growth.
    for atom in conj.equalities():
        if var in atom.variables:
            return _substitute_equality(conj, atom, var)

    lower: list[tuple[LinearConstraint, LinearExpression]] = []
    upper: list[tuple[LinearConstraint, LinearExpression]] = []
    rest: list[LinearConstraint] = []
    for atom in conj.atoms:
        coeff = atom.expression.coefficient(var)
        if coeff == 0:
            rest.append(atom)
            continue
        # atom: c*var + r relop b  =>  var relop' (b - r)/c
        residual = (LinearExpression.constant(atom.bound)
                    - (atom.expression - LinearExpression({var: coeff}))) / coeff
        if coeff > 0:
            upper.append((atom, residual))
        else:
            lower.append((atom, residual))

    derived: list[LinearConstraint] = []
    for lo_atom, lo_expr in lower:
        for hi_atom, hi_expr in upper:
            strict = (lo_atom.relop is Relop.LT
                      or hi_atom.relop is Relop.LT)
            relop = Relop.LT if strict else Relop.LE
            derived.append(LinearConstraint.build(lo_expr, relop, hi_expr))
    return ConjunctiveConstraint(rest + derived)


def project_conjunctive(conj: ConjunctiveConstraint,
                        free: Iterable[Variable]) -> ConjunctiveConstraint:
    """``((free) | conj)`` with eager elimination of every bound variable.

    This is *unrestricted* quantifier elimination: worst-case exponential
    in the number of eliminated variables (the blow-up benchmarked by
    experiment E9).  The paper's checked operator is
    :func:`restricted_project`.
    """
    free_set = frozenset(free)
    work = conj.eliminate_equalities(keep=free_set)
    to_eliminate = sorted(work.variables - free_set, key=lambda v: v.name)
    for var in _elimination_order(work, to_eliminate):
        work = eliminate_variable(work, var)
        work = prune_syntactic(work)
    return work


def restricted_project(conj: ConjunctiveConstraint,
                       free: Iterable[Variable]) -> ConjunctiveConstraint:
    """The paper's restricted projection on a conjunction.

    Either (1) at most one, or (2) all but one, of the free variables of
    ``conj`` may be *missing* from ``free`` — i.e. one application
    eliminates one variable, or keeps only one.  Anything else raises
    :class:`ConstraintFamilyError`.  (Free variables in ``free`` that do
    not occur in ``conj`` are permitted: projection "can add new free
    variables".)
    """
    free_set = frozenset(free)
    occurring = conj.variables
    eliminated = occurring - free_set
    kept = occurring & free_set
    if len(eliminated) > 1 and len(kept) > 1:
        raise ConstraintFamilyError(
            f"restricted projection may eliminate one variable or keep "
            f"one variable; this application eliminates "
            f"{sorted(v.name for v in eliminated)} while keeping "
            f"{sorted(v.name for v in kept)}")
    return project_conjunctive(conj, free_set)


def _elimination_order(conj: ConjunctiveConstraint,
                       candidates: Sequence[Variable]) -> list[Variable]:
    """Greedy min-fill ordering: repeatedly pick the variable whose FM
    step produces the fewest derived atoms (classic FM heuristic)."""
    remaining = list(candidates)
    order: list[Variable] = []
    # Cost is estimated on the original conjunction; re-estimating after
    # each elimination would be more accurate but the static estimate is
    # a good and much cheaper proxy.
    counts: dict[Variable, tuple[int, int]] = {}
    for var in remaining:
        lows = highs = 0
        for atom in conj.atoms:
            coeff = atom.expression.coefficient(var)
            if coeff > 0:
                highs += 1
            elif coeff < 0:
                lows += 1
        counts[var] = (lows, highs)
    remaining.sort(key=lambda v: (counts[v][0] * counts[v][1]
                                  - counts[v][0] - counts[v][1], v.name))
    order.extend(remaining)
    return order


def _substitute_equality(conj: ConjunctiveConstraint,
                         equality: LinearConstraint,
                         var: Variable) -> ConjunctiveConstraint:
    coeff = equality.expression.coefficient(var)
    rest_expr = equality.expression - LinearExpression({var: coeff})
    solution = (LinearExpression.constant(equality.bound) - rest_expr) / coeff
    new_atoms = [a.substitute({var: solution})
                 for a in conj.atoms if a is not equality]
    return ConjunctiveConstraint(new_atoms)


def prune_syntactic(conj: ConjunctiveConstraint) -> ConjunctiveConstraint:
    """Cheap redundancy pruning between atoms sharing a coefficient vector.

    Among atoms with the same normalized expression, keep only the
    tightest upper bound (and the strictest at equal bounds); equalities
    and disequalities are left untouched.  This is purely syntactic and
    therefore safe to run inside elimination loops.
    """
    best: dict = {}
    others: list[LinearConstraint] = []
    for atom in conj.atoms:
        if atom.relop not in (Relop.LE, Relop.LT):
            others.append(atom)
            continue
        key = tuple(sorted((v.name, c) for v, c in
                           atom.expression.coefficients.items()))
        current = best.get(key)
        if current is None:
            best[key] = atom
            continue
        if (atom.bound < current.bound
                or (atom.bound == current.bound
                    and atom.relop is Relop.LT)):
            best[key] = atom
    return ConjunctiveConstraint(others + list(best.values()))

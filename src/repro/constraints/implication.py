"""Entailment between constraint formulas — the paper's ``|=`` predicate.

Section 4.2 defines ``((x..)|phi) |= ((y..)|psi)`` to hold iff for every
real instantiation of all variables, truth of the left side implies truth
of the right side.  We decide it completely:

* ``conjunctive |= conjunctive``: for each atom ``a`` of the right side,
  check ``phi and not(a)`` unsatisfiable.  Negation of ``=`` splits into
  two strict branches.
* ``disjunctive |= disjunctive``: every disjunct of the left side must
  entail the right-side disjunction; ``D |= (C1 or ... or Ck)`` holds iff
  ``D and not(C1) and ... and not(Ck)`` is unsatisfiable, where each
  ``not(Cj)`` is a disjunction of negated atoms — expanded to DNF with
  early unsatisfiability pruning.  The expansion is exponential only in
  the size of the *query* constraint, matching the paper's data-complexity
  analysis (Section 5).
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.satisfiability import is_satisfiable
from repro.runtime import context as context_mod
from repro.runtime.context import QueryContext


def negated_atom_branches(atom: LinearConstraint
                          ) -> tuple[LinearConstraint, ...]:
    """The complement of an atom as a disjunction of =,<=,< atoms."""
    negated = atom.negate()
    if negated.relop is Relop.NE:
        return negated.split_disequality()
    return (negated,)


def conjunctive_entails_conjunctive(lhs: ConjunctiveConstraint,
                                    rhs: ConjunctiveConstraint,
                                    ctx: QueryContext | None = None
                                    ) -> bool:
    """``lhs |= rhs`` for two conjunctions."""
    ctx = context_mod.resolve(ctx)
    if not is_satisfiable(lhs, ctx):
        return True
    for atom in rhs.atoms:
        for branch in negated_atom_branches(atom):
            if is_satisfiable(lhs.conjoin(branch), ctx):
                return False
    return True


def conjunctive_entails_disjunction(lhs: ConjunctiveConstraint,
                                    disjuncts: Sequence[ConjunctiveConstraint],
                                    ctx: QueryContext | None = None
                                    ) -> bool:
    """``lhs |= (d1 or ... or dk)``.

    Implemented as unsatisfiability of ``lhs and not(d1) and ... and
    not(dk)``; the conjunction of negated disjuncts is explored as a DNF
    product with depth-first early pruning, so the common case (few
    disjuncts, early contradictions) stays fast.
    """
    ctx = context_mod.resolve(ctx)
    if not is_satisfiable(lhs, ctx):
        return True
    if not disjuncts:
        return False

    # Fast path: some single disjunct already subsumes lhs.
    for d in disjuncts:
        if conjunctive_entails_conjunctive(lhs, d, ctx):
            return True

    negations: list[list[ConjunctiveConstraint]] = []
    for d in disjuncts:
        branches: list[ConjunctiveConstraint] = []
        for atom in d.atoms:
            for branch in negated_atom_branches(atom):
                branches.append(ConjunctiveConstraint.of(branch))
        if not branches:
            # Negating TRUE gives FALSE: the disjunct covers everything.
            return True
        negations.append(branches)

    # Order by fewest branches first to maximize pruning.
    negations.sort(key=len)

    def explore(base: ConjunctiveConstraint, level: int) -> bool:
        """True iff some branch assignment from ``level`` on is
        satisfiable together with ``base`` (i.e. entailment FAILS)."""
        if not is_satisfiable(base, ctx):
            return False
        if level == len(negations):
            return True
        for branch in negations[level]:
            if explore(base.conjoin(branch), level + 1):
                return True
        return False

    return not explore(lhs, 0)


def disjunction_entails_disjunction(
        lhs: Sequence[ConjunctiveConstraint],
        rhs: Sequence[ConjunctiveConstraint],
        ctx: QueryContext | None = None) -> bool:
    """``(l1 or ... or lm) |= (r1 or ... or rk)``."""
    ctx = context_mod.resolve(ctx)
    return all(conjunctive_entails_disjunction(l, rhs, ctx) for l in lhs)


def equivalent(lhs: ConjunctiveConstraint,
               rhs: ConjunctiveConstraint,
               ctx: QueryContext | None = None) -> bool:
    """Mutual entailment of two conjunctions."""
    ctx = context_mod.resolve(ctx)
    return (conjunctive_entails_conjunctive(lhs, rhs, ctx)
            and conjunctive_entails_conjunctive(rhs, lhs, ctx))


def atom_redundant_in(atom: LinearConstraint,
                      context: ConjunctiveConstraint,
                      ctx: QueryContext | None = None) -> bool:
    """Is ``atom`` implied by ``context`` (used by canonical forms)?

    Memoized on ``(atom, sorted context atoms)`` — canonicalization
    asks this question once per atom per call, and the same
    (atom, context) pairs recur across structurally equal constraints.
    The per-branch satisfiability checks additionally flow through the
    interval prefilter via :func:`is_satisfiable`.
    """
    resolved = context_mod.resolve(ctx)
    return resolved.memoized(
        ("redundant", atom, context.sorted_atoms()),
        lambda: _atom_redundant_in(atom, context, resolved))


def _atom_redundant_in(atom: LinearConstraint,
                       context: ConjunctiveConstraint,
                       ctx: QueryContext) -> bool:
    for branch in negated_atom_branches(atom):
        if is_satisfiable(context.conjoin(branch), ctx):
            return False
    return True

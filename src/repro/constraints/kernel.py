"""Batched numeric kernels: float prefilter, exact-rational fallback.

The exact simplex (:mod:`repro.constraints.simplex`) answers every
satisfiability question over ``Fraction`` arithmetic — unconditionally
correct, and the dominant cost of dense workloads.  This kernel runs a
*float* screen in front of it over whole batches of packed systems
(:mod:`repro.constraints.matrix`) and returns three-valued verdicts:

* :data:`INFEASIBLE` — the system is empty **under the documented
  ε-assumption**: an elastic LP relaxation has minimum violation
  ``t* > ε`` after per-row normalization, or the vectorized interval
  screen shows a row unachievable on the system's bounding box by more
  than an ε margin.  Strict atoms are screened weakened and
  disequalities are dropped, both of which only *enlarge* the point
  set, so a reject of the relaxation is a reject of the system.
* :data:`FEASIBLE` — airtight, no ε-assumption: the LP produced a
  float point with margin ``t* < -ε``, and that point — converted
  exactly via ``Fraction(float)`` — was verified against **every**
  exact atom (strict, disequality, equality included) with rational
  arithmetic.  A verdict of feasible is a constructive witness.
* :data:`UNKNOWN` — anything in the ε band, any packing failure, any
  pivot-cap hit: the caller falls back to the exact solver.  The
  kernel never guesses.

The float LP is an *elastic* program — minimize ``t`` subject to
``a_i . x - s_i t <= b_i`` (equalities as opposing row pairs),
``t >= -1`` — whose optimum is the normalized infeasibility of the
system: negative iff a point satisfies every row with slack.  The
primary backend is a dense tableau simplex in pure Python (slack basis
is feasible by construction, so no Phase I; Dantzig entering rule with
a pivot cap that degrades to :data:`UNKNOWN`).  ``scipy.optimize
.linprog`` takes over for large systems when the ``fast`` extra is
installed; numpy powers the batched interval screen.  Everything
degrades to the exact path when the extra is missing — see
:func:`repro.runtime.numeric_available`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.constraints import matrix
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.runtime import context as context_mod
from repro.runtime import numeric

#: Relative feasibility margin.  Verdicts inside ``|t*| <= EPSILON``
#: fall through to the exact solver; rejects assume float LP optima are
#: accurate to better than this after per-row scaling.
EPSILON = 1e-7

#: Float-simplex pivot cap; hitting it yields :data:`UNKNOWN`.
MAX_PIVOTS = 500

#: Row count beyond which scipy's LP (when installed) replaces the
#: pure-Python tableau.
SCIPY_MIN_ROWS = 60

#: Atom-count floor for :func:`quick_satisfiable` — tiny systems are
#: cheaper to solve exactly than to pack, and several calibration
#: tests depend on the exact solver running for them.
MIN_ATOMS = 5

#: Guard checkpoint cadence in :func:`classify_matrix` (units).
_CHECK_EVERY = 32

FEASIBLE = 1
UNKNOWN = 0
INFEASIBLE = -1

_TOL = 1e-9


# ---------------------------------------------------------------------------
# Elastic float LP
# ---------------------------------------------------------------------------


def _expand_rows(ps: matrix.PackedSystem
                 ) -> tuple[list[list[float]], list[float], list[float]]:
    """LE-only rows of the elastic relaxation: equalities become
    opposing row pairs."""
    rows: list[list[float]] = []
    rhs: list[float] = []
    scales: list[float] = []
    for i in range(ps.n_rows):
        rows.append(ps.rows[i])
        rhs.append(ps.rhs[i])
        scales.append(ps.scales[i])
        if ps.kinds[i] == matrix.ROW_EQ:
            rows.append([-c for c in ps.rows[i]])
            rhs.append(-ps.rhs[i])
            scales.append(ps.scales[i])
    return rows, rhs, scales


def _elastic_tableau(rows: Sequence[Sequence[float]],
                     rhs: Sequence[float],
                     scales: Sequence[float]
                     ) -> tuple[float, list[float]] | None:
    """Pure-Python dense-tableau solve of the elastic LP.

    Returns ``(t*, x)`` or ``None`` when the pivot cap is hit.  Via
    ``t = t0 - tau`` (``t0`` large enough that the slack basis is
    feasible with room to spare) the program becomes *maximize* ``tau``
    over ``a_i . x + s_i tau <= b_i + s_i t0``, ``tau <= t0 + 1`` —
    the cap row bounds the objective, so the simplex cannot diverge.
    """
    m0 = len(rows)
    nvars = len(rows[0]) if m0 else 0
    t0 = max((-b) / s for b, s in zip(rhs, scales)) if m0 else 0.0
    t0 = max(t0, 0.0) + 1.0
    n = 2 * nvars + 1          # x = p - q free split, then tau
    m = m0 + 1                 # elastic rows + the tau cap row
    width = n + m + 1          # structural | slack | rhs
    tableau: list[list[float]] = []
    for i in range(m0):
        row = [0.0] * width
        a = rows[i]
        for j in range(nvars):
            row[j] = a[j]
            row[nvars + j] = -a[j]
        row[2 * nvars] = scales[i]
        row[n + i] = 1.0
        row[-1] = rhs[i] + scales[i] * t0
        tableau.append(row)
    cap = [0.0] * width
    cap[2 * nvars] = 1.0
    cap[n + m0] = 1.0
    cap[-1] = t0 + 1.0
    tableau.append(cap)
    objective = [0.0] * width
    objective[2 * nvars] = 1.0
    basis = list(range(n, n + m))
    for _ in range(MAX_PIVOTS):
        enter, best = -1, _TOL
        for j in range(n + m):
            if objective[j] > best:
                best, enter = objective[j], j
        if enter < 0:
            break
        leave, ratio = -1, 0.0
        for i in range(m):
            coeff = tableau[i][enter]
            if coeff > _TOL:
                r = tableau[i][-1] / coeff
                if leave < 0 or r < ratio:
                    leave, ratio = i, r
        if leave < 0:          # unbounded: impossible past the cap row,
            return None        # so numerically suspect — stay exact
        pivot_row = tableau[leave]
        inv = 1.0 / pivot_row[enter]
        for j in range(width):
            pivot_row[j] *= inv
        for i in range(m):
            if i == leave:
                continue
            factor = tableau[i][enter]
            if factor != 0.0:
                row = tableau[i]
                for j in range(width):
                    row[j] -= factor * pivot_row[j]
        factor = objective[enter]
        if factor != 0.0:
            for j in range(width):
                objective[j] -= factor * pivot_row[j]
        basis[leave] = enter
    else:
        return None
    values = [0.0] * (n + m)
    for i, bv in enumerate(basis):
        values[bv] = tableau[i][-1]
    t_star = t0 - (-objective[-1])
    x = [values[j] - values[nvars + j] for j in range(nvars)]
    return t_star, x


def _elastic_scipy(rows: Sequence[Sequence[float]],
                   rhs: Sequence[float],
                   scales: Sequence[float]
                   ) -> tuple[float, list[float]] | None:
    """scipy backend for large systems: same elastic program, solved
    by ``linprog`` over variables ``(x, t)`` with ``t >= -1``."""
    linprog = numeric.get_linprog()
    np = numeric.get_numpy()
    if linprog is None or np is None:
        return None
    m0 = len(rows)
    nvars = len(rows[0]) if m0 else 0
    a_ub = np.empty((m0, nvars + 1), dtype=np.float64)
    for i, row in enumerate(rows):
        a_ub[i, :nvars] = row
        a_ub[i, nvars] = -scales[i]
    cost = np.zeros(nvars + 1)
    cost[nvars] = 1.0
    bounds = [(None, None)] * nvars + [(-1.0, None)]
    try:
        res = linprog(cost, A_ub=a_ub, b_ub=np.asarray(rhs, dtype=np.float64),
                      bounds=bounds, method="highs")
    except Exception:
        return None
    if not getattr(res, "success", False):
        return None
    return float(res.x[nvars]), [float(v) for v in res.x[:nvars]]


def _elastic_min(rows: Sequence[Sequence[float]],
                 rhs: Sequence[float],
                 scales: Sequence[float]
                 ) -> tuple[float, list[float]] | None:
    if len(rows) >= SCIPY_MIN_ROWS:
        solved = _elastic_scipy(rows, rhs, scales)
        if solved is not None:
            return solved
    return _elastic_tableau(rows, rhs, scales)


# ---------------------------------------------------------------------------
# Single-system classification
# ---------------------------------------------------------------------------


def _verified_point(ps: matrix.PackedSystem,
                    x: Sequence[float]) -> bool:
    """Exact-rational membership of the float witness: ``Fraction``
    conversion is exact, so acceptance carries no float assumption."""
    point = {var: Fraction(val) for var, val in zip(ps.variables, x)}
    return all(atom.holds_at(point) for atom in ps.atoms)


def classify_system(ps: matrix.PackedSystem) -> int:
    """Three-valued verdict for one packed conjunctive body."""
    if ps.n_rows == 0:
        # Only trivial/disequality atoms: try the origin exactly.
        if _verified_point(ps, [0.0] * ps.n_vars):
            return FEASIBLE
        return UNKNOWN
    solved = _elastic_min(*_expand_rows(ps))
    if solved is None:
        return UNKNOWN
    t_star, x = solved
    if t_star > EPSILON:
        return INFEASIBLE
    if t_star < -EPSILON and _verified_point(ps, x):
        return FEASIBLE
    return UNKNOWN


def quick_satisfiable(conj: ConjunctiveConstraint,
                      ctx=None) -> bool | None:
    """Numeric satisfiability screen for one conjunction: ``True`` /
    ``False`` when the kernel can decide, ``None`` to stay exact.

    Deliberately gated: inactive contexts, systems below
    :data:`MIN_ATOMS`, and systems with equality atoms (which the
    elastic accept side can never decide) skip the kernel entirely
    without booking a fallback — the exact path was the right call,
    not a degradation.
    """
    resolved = context_mod.resolve(ctx)
    if not resolved.numeric_active():
        return None
    atoms = conj.atoms
    if len(atoms) < MIN_ATOMS or conj.equalities():
        return None
    guard = resolved.guard
    if guard is not None:
        guard.checkpoint("numeric")
    ps = matrix.pack_conjunction(conj)
    if ps is None:
        resolved.stats.numeric_fallbacks += 1
        return None
    verdict = classify_system(ps)
    if verdict == FEASIBLE:
        resolved.stats.numeric_accepts += 1
        return True
    if verdict == INFEASIBLE:
        resolved.stats.numeric_rejects += 1
        return False
    resolved.stats.numeric_fallbacks += 1
    return None


# ---------------------------------------------------------------------------
# Batched classification
# ---------------------------------------------------------------------------


def _screen(stacked: dict) -> "object | None":
    """Vectorized interval screen over the stacked batch: a boolean
    array (one entry per flattened system) marking systems whose
    bounding box already refutes some row by more than an ε margin.

    One pass of numpy array ops over every row of every system in the
    batch — no per-system Python work.  Mirrors the exact prefilter in
    :mod:`repro.constraints.bounds` in float arithmetic.
    """
    np = numeric.get_numpy()
    if np is None:
        return None
    coeffs = stacked["coeffs"]
    rhs = stacked["rhs"]
    scales = stacked["scales"]
    kinds = stacked["kinds"]
    row_sys = stacked["row_sys"]
    n_sys = len(stacked["systems"])
    n_rows, width = coeffs.shape
    if width == 0:
        return np.zeros(n_sys, dtype=bool)
    lo = np.full((n_sys, width), -np.inf)
    hi = np.full((n_sys, width), np.inf)
    nonzero = coeffs != 0.0
    single = np.flatnonzero(nonzero.sum(axis=1) == 1)
    if single.size:
        var = np.argmax(nonzero[single], axis=1)
        coeff = coeffs[single, var]
        value = rhs[single] / coeff
        sys_of = row_sys[single]
        positive = coeff > 0.0
        is_eq = kinds[single] == matrix.ROW_EQ
        upper = positive | is_eq
        lower = ~positive | is_eq
        np.minimum.at(hi, (sys_of[upper], var[upper]), value[upper])
        np.maximum.at(lo, (sys_of[lower], var[lower]), value[lower])
    dead = np.zeros(n_sys, dtype=bool)
    # Empty boxes (with an outward ε margin on the comparison).
    with np.errstate(invalid="ignore"):
        gap = lo - hi
        span = np.abs(lo) + np.abs(hi) + 1.0
        dead |= (np.nan_to_num(gap, nan=-np.inf)
                 > EPSILON * np.nan_to_num(span, nan=np.inf)).any(axis=1)
        # Row extrema over the box: minimizing end per coefficient sign.
        lo_rows = lo[row_sys]
        hi_rows = hi[row_sys]
        contrib_min = np.where(
            coeffs > 0.0, coeffs * lo_rows,
            np.where(coeffs < 0.0, coeffs * hi_rows, 0.0))
        row_min = contrib_min.sum(axis=1)
        bad = row_min > rhs + EPSILON * scales
        eq_rows = kinds == matrix.ROW_EQ
        if eq_rows.any():
            contrib_max = np.where(
                coeffs > 0.0, coeffs * hi_rows,
                np.where(coeffs < 0.0, coeffs * lo_rows, 0.0))
            row_max = contrib_max.sum(axis=1)
            bad |= eq_rows & (row_max < rhs - EPSILON * scales)
    np.logical_or.at(dead, row_sys, bad)
    return dead


def classify_matrix(cm: matrix.ConstraintMatrix,
                    ctx=None) -> list[int]:
    """Per-constraint verdicts for a packed batch — one kernel call.

    A constraint is :data:`FEASIBLE` when some disjunct body is,
    :data:`INFEASIBLE` when every body is (vacuously for the empty
    disjunction), :data:`UNKNOWN` otherwise.  Books one
    ``numeric_accepts`` / ``numeric_rejects`` / ``numeric_fallbacks``
    per constraint on the resolved context's stats.
    """
    resolved = context_mod.resolve(ctx)
    guard = resolved.guard
    stats = resolved.stats
    stacked = cm.stacked()
    dead = _screen(stacked) if stacked is not None else None
    verdicts: list[int] = []
    flat = 0
    for pos, unit in enumerate(cm.units):
        if guard is not None and pos % _CHECK_EVERY == 0:
            guard.checkpoint("numeric")
        if unit is None:
            stats.numeric_fallbacks += 1
            verdicts.append(UNKNOWN)
            continue
        verdict = INFEASIBLE
        for ps in unit:
            if ps is None:
                if verdict == INFEASIBLE:
                    verdict = UNKNOWN
                continue
            my_flat, flat = flat, flat + 1
            if verdict == FEASIBLE:
                continue
            if dead is not None and bool(dead[my_flat]):
                body = INFEASIBLE
            else:
                body = classify_system(ps)
            if body == FEASIBLE:
                verdict = FEASIBLE
            elif body == UNKNOWN and verdict == INFEASIBLE:
                verdict = UNKNOWN
        if verdict == FEASIBLE:
            stats.numeric_accepts += 1
        elif verdict == INFEASIBLE:
            stats.numeric_rejects += 1
        else:
            stats.numeric_fallbacks += 1
        verdicts.append(verdict)
    return verdicts

"""Geometric helpers for low-dimensional CST objects.

The paper positions linear constraints as the conceptual representation
of spatial data ("for low-dimensional space, the best known data
structures and algorithms will be used").  This module supplies the
small computational-geometry toolbox the examples and workloads need:
exact 2-D vertex enumeration, polygon area, and translation/scaling of
CST objects.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Sequence

from repro.errors import DimensionError
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject
from repro.constraints.terms import (
    RationalLike,
    Variable,
    to_fraction,
)


def box(schema: Sequence[Variable],
        bounds: Sequence[tuple[RationalLike, RationalLike]]) -> CSTObject:
    """Axis-aligned box ``lo_i <= x_i <= hi_i`` as a CST object."""
    if len(schema) != len(bounds):
        raise DimensionError("schema and bounds lengths differ")
    atoms = []
    for var, (lo, hi) in zip(schema, bounds):
        atoms.append(LinearConstraint.build(var, Relop.GE, to_fraction(lo)))
        atoms.append(LinearConstraint.build(var, Relop.LE, to_fraction(hi)))
    return CSTObject.from_atoms(schema, atoms)


def translate(obj: CSTObject, offsets: Sequence[RationalLike]) -> CSTObject:
    """The CST object shifted by ``offsets`` (same schema)."""
    if len(offsets) != obj.dimension:
        raise DimensionError("offset arity does not match dimension")
    bindings = {
        var: var.as_expression() - to_fraction(delta)
        for var, delta in zip(obj.schema, offsets)}
    return CSTObject(obj.schema, obj.constraint.substitute(bindings))


def scale(obj: CSTObject, factor: RationalLike) -> CSTObject:
    """The CST object scaled about the origin by a positive factor."""
    f = to_fraction(factor)
    if f <= 0:
        raise ValueError("scale factor must be positive")
    bindings = {var: var.as_expression() / f for var in obj.schema}
    return CSTObject(obj.schema, obj.constraint.substitute(bindings))


def vertices_2d(conj: ConjunctiveConstraint,
                schema: Sequence[Variable]
                ) -> list[tuple[Fraction, Fraction]]:
    """Vertices of a bounded 2-D polyhedron, in counter-clockwise order.

    Strictness and disequalities are ignored (the closure's vertices are
    returned).  Raises :class:`DimensionError` when the constraint
    mentions variables outside the two schema variables.
    """
    if len(schema) != 2:
        raise DimensionError("vertices_2d needs a 2-variable schema")
    x, y = schema
    extra = conj.variables - {x, y}
    if extra:
        raise DimensionError(
            f"constraint is not 2-D: extra variables "
            f"{sorted(v.name for v in extra)}")

    lines: list[tuple[Fraction, Fraction, Fraction]] = []
    for atom in conj.atoms:
        if atom.relop is Relop.NE:
            continue
        a = atom.expression.coefficient(x)
        b = atom.expression.coefficient(y)
        c = atom.bound
        lines.append((a, b, c))
        if atom.relop is Relop.EQ:
            lines.append((-a, -b, -c))

    closure = ConjunctiveConstraint(
        a.weakened() for a in conj.atoms if a.relop is not Relop.NE)

    points: set[tuple[Fraction, Fraction]] = set()
    for (a1, b1, c1), (a2, b2, c2) in itertools.combinations(lines, 2):
        det = a1 * b2 - a2 * b1
        if det == 0:
            continue
        px = (c1 * b2 - c2 * b1) / det
        py = (a1 * c2 - a2 * c1) / det
        if closure.holds_at({x: px, y: py}):
            points.add((px, py))
    return _ccw_sort(list(points))


def vertices_nd(conj: ConjunctiveConstraint,
                schema: Sequence[Variable]
                ) -> list[tuple[Fraction, ...]]:
    """Vertices of a bounded polyhedron in any dimension.

    Classical basis enumeration: every vertex is the unique solution of
    some choice of ``n`` linearly independent active constraints, so we
    solve each n-subset of the hyperplanes and keep feasible solutions.
    Exponential in ``n`` over the atom count — meant for the small
    dimensions of the examples, not as a scalable hull algorithm.
    Strictness and disequalities are ignored (the closure's vertices).
    """
    vars_ = list(schema)
    n = len(vars_)
    extra = conj.variables - set(vars_)
    if extra:
        raise DimensionError(
            f"constraint mentions variables outside the schema: "
            f"{sorted(v.name for v in extra)}")
    if n == 0:
        return []

    rows: list[tuple[list[Fraction], Fraction]] = []
    for atom in conj.atoms:
        if atom.relop is Relop.NE:
            continue
        coeffs = [atom.expression.coefficient(v) for v in vars_]
        rows.append((coeffs, atom.bound))
        if atom.relop is Relop.EQ:
            rows.append(([-c for c in coeffs], -atom.bound))

    closure = ConjunctiveConstraint(
        a.weakened() for a in conj.atoms if a.relop is not Relop.NE)

    points: set[tuple[Fraction, ...]] = set()
    for combo in itertools.combinations(range(len(rows)), n):
        solution = _solve_square([rows[i] for i in combo], n)
        if solution is None:
            continue
        point = dict(zip(vars_, solution))
        if closure.holds_at(point):
            points.add(tuple(solution))
    return sorted(points)


def _solve_square(system: list[tuple[list[Fraction], Fraction]],
                  n: int) -> list[Fraction] | None:
    """Solve an n x n linear system by Gaussian elimination; None when
    singular."""
    matrix = [list(coeffs) + [rhs] for coeffs, rhs in system]
    for col in range(n):
        pivot_row = next(
            (r for r in range(col, n) if matrix[r][col] != 0), None)
        if pivot_row is None:
            return None
        matrix[col], matrix[pivot_row] = matrix[pivot_row], matrix[col]
        pivot = matrix[col][col]
        matrix[col] = [v / pivot for v in matrix[col]]
        for r in range(n):
            if r != col and matrix[r][col] != 0:
                factor = matrix[r][col]
                matrix[r] = [a - factor * b
                             for a, b in zip(matrix[r], matrix[col])]
    return [matrix[r][n] for r in range(n)]


def polygon_area(vertices: Sequence[tuple[Fraction, Fraction]]) -> Fraction:
    """Shoelace area of a CCW-ordered polygon."""
    if len(vertices) < 3:
        return Fraction(0)
    total = Fraction(0)
    for (x1, y1), (x2, y2) in zip(vertices,
                                  vertices[1:] + [vertices[0]]):
        total += x1 * y2 - x2 * y1
    return total / 2


def area_2d(obj: CSTObject) -> Fraction:
    """Exact area of a bounded 2-D conjunctive CST object's closure."""
    if obj.dimension != 2:
        raise DimensionError("area_2d needs dimension 2")
    disjuncts = obj._flat_disjuncts()
    if len(disjuncts) > 1:
        raise DimensionError(
            "area_2d supports convex (conjunctive) objects only; "
            "decompose unions first")
    total = Fraction(0)
    for conj in disjuncts:
        total += polygon_area(vertices_2d(conj, obj.schema))
    return total


def cut(obj: CSTObject, var: Variable, value: RationalLike,
        remaining: Sequence[Variable]) -> CSTObject:
    """Cross-section: fix ``var = value`` and project onto ``remaining``.

    Implements the paper's "show a projection of their cut at the height
    of 1/2 feet" query shape.
    """
    pinned = obj.conjoin_atoms(
        [LinearConstraint.build(var, Relop.EQ, to_fraction(value))])
    return pinned.project(remaining)


def _ccw_sort(points: list[tuple[Fraction, Fraction]]
              ) -> list[tuple[Fraction, Fraction]]:
    if len(points) <= 2:
        return sorted(points)
    cx = sum(p[0] for p in points) / len(points)
    cy = sum(p[1] for p in points) / len(points)

    def half_and_slope(p):
        dx, dy = p[0] - cx, p[1] - cy
        # Order by angle without trigonometry: split into half-planes,
        # then sort by exact slope comparison via cross products.
        half = 0 if (dy > 0 or (dy == 0 and dx > 0)) else 1
        return half, dx, dy

    def compare_key(p):
        half, dx, dy = half_and_slope(p)
        return (half, _pseudo_angle(dx, dy))

    return sorted(points, key=compare_key)


def _pseudo_angle(dx: Fraction, dy: Fraction) -> Fraction:
    """Monotone-in-angle rational surrogate within a half-plane."""
    denom = abs(dx) + abs(dy)
    if denom == 0:
        return Fraction(0)
    return -dx / denom if dy >= 0 else dx / denom

"""The four constraint families of Section 3.1 and their closure rules.

The paper defines four interrelated families so that representation size
and manipulation time stay polynomial for a fixed number of logical
connectives:

========================  ==============================================
CONJUNCTIVE               conjunction of linear atoms; closed under
                          ``and`` and *restricted* projection
EXISTENTIAL_CONJUNCTIVE   conjunctive + unrestricted (symbolic)
                          projection; closed under ``and`` and projection
DISJUNCTIVE               conjunctive constraints and their negations;
                          closed under ``or``, ``and``, restricted
                          projection
DISJUNCTIVE_EXISTENTIAL   disjunction of existential conjunctives;
                          closed under ``or`` and projection keeping all
                          free variables
========================  ==============================================

Inclusions: CONJUNCTIVE < EXISTENTIAL_CONJUNCTIVE < DISJUNCTIVE_EXISTENTIAL
and CONJUNCTIVE < DISJUNCTIVE < DISJUNCTIVE_EXISTENTIAL.

:func:`combine` computes the least family closed under an operation
applied to members of two families, raising
:class:`ConstraintFamilyError` when the paper defines no closure for the
combination.
"""

from __future__ import annotations

import enum

from repro.errors import ConstraintFamilyError
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)


class Family(enum.Enum):
    CONJUNCTIVE = "conjunctive"
    EXISTENTIAL_CONJUNCTIVE = "existential conjunctive"
    DISJUNCTIVE = "disjunctive"
    DISJUNCTIVE_EXISTENTIAL = "disjunctive existential"

    def __le__(self, other: "Family") -> bool:
        """Family inclusion."""
        if self is other:
            return True
        if self is Family.CONJUNCTIVE:
            return True
        if other is Family.DISJUNCTIVE_EXISTENTIAL:
            return True
        return False

    def __lt__(self, other: "Family") -> bool:
        return self is not other and self.__le__(other)


def classify(constraint) -> Family:
    """The (most specific) family of a constraint object."""
    if isinstance(constraint, ConjunctiveConstraint):
        return Family.CONJUNCTIVE
    if isinstance(constraint, ExistentialConjunctiveConstraint):
        if constraint.is_quantifier_free():
            return Family.CONJUNCTIVE
        return Family.EXISTENTIAL_CONJUNCTIVE
    if isinstance(constraint, DisjunctiveConstraint):
        if len(constraint) <= 1:
            return Family.CONJUNCTIVE
        return Family.DISJUNCTIVE
    if isinstance(constraint, DisjunctiveExistentialConstraint):
        if len(constraint) <= 1:
            return classify(constraint.disjuncts[0]) if constraint.disjuncts \
                else Family.CONJUNCTIVE
        if all(d.is_quantifier_free() for d in constraint.disjuncts):
            return Family.DISJUNCTIVE
        return Family.DISJUNCTIVE_EXISTENTIAL
    raise TypeError(f"not a constraint family member: {constraint!r}")


def join(a: Family, b: Family) -> Family:
    """Least family containing both (the lattice join)."""
    if a <= b:
        return b
    if b <= a:
        return a
    # The only incomparable pair is {EXISTENTIAL_CONJUNCTIVE, DISJUNCTIVE}.
    return Family.DISJUNCTIVE_EXISTENTIAL


class Operation(enum.Enum):
    AND = "and"
    OR = "or"
    NOT = "not"
    PROJECT_RESTRICTED = "restricted projection"
    PROJECT = "projection"


def combine(op: Operation, a: Family, b: Family | None = None) -> Family:
    """Family of the result of ``op`` applied to members of ``a`` (and
    ``b``), following the paper's closure rules exactly.

    Raises :class:`ConstraintFamilyError` for combinations the paper
    leaves undefined (e.g. negating an existential formula).
    """
    if op is Operation.NOT:
        if a <= Family.CONJUNCTIVE:
            return Family.DISJUNCTIVE
        if a is Family.DISJUNCTIVE:
            # Negation of a disjunctive constraint is a conjunction of
            # negated conjunctives, each of which is disjunctive; the
            # family is closed under "and".
            return Family.DISJUNCTIVE
        raise ConstraintFamilyError(
            f"the {a.value} family is not closed under negation")

    if b is None:
        raise ConstraintFamilyError(f"{op.value} needs two operands")

    upper = join(a, b)
    if op is Operation.AND:
        if upper in (Family.CONJUNCTIVE, Family.EXISTENTIAL_CONJUNCTIVE,
                     Family.DISJUNCTIVE):
            return upper
        raise ConstraintFamilyError(
            "the disjunctive existential family is not closed under "
            "conjunction (Section 3.1); eliminate quantifiers or "
            "restructure the formula")
    if op is Operation.OR:
        if upper is Family.CONJUNCTIVE:
            return Family.DISJUNCTIVE
        if upper is Family.DISJUNCTIVE:
            return Family.DISJUNCTIVE
        return Family.DISJUNCTIVE_EXISTENTIAL
    raise ConstraintFamilyError(f"unsupported operation {op!r}")


def project_family(a: Family, *, restricted: bool) -> Family:
    """Family of a projection applied to a member of ``a``."""
    if restricted:
        if a in (Family.CONJUNCTIVE, Family.DISJUNCTIVE):
            return a
    if a in (Family.CONJUNCTIVE, Family.EXISTENTIAL_CONJUNCTIVE):
        return Family.EXISTENTIAL_CONJUNCTIVE
    if a is Family.DISJUNCTIVE_EXISTENTIAL or a is Family.DISJUNCTIVE:
        # Allowed only when no free variable is hidden; the structural
        # check happens at the constraint level.  The family is DEX.
        return Family.DISJUNCTIVE_EXISTENTIAL
    raise ConstraintFamilyError(
        f"projection is not defined on the {a.value} family")

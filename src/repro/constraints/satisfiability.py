"""Satisfiability of conjunctions of linear atoms over the reals.

The paper's WHERE-clause satisfiability predicate ("a disjunctive
existential formula is true iff satisfiable", Section 4.2) bottoms out
here.  The decision procedure is complete for the full atom language:

* equalities and non-strict inequalities go to the exact simplex directly;
* strict inequalities use the classical epsilon trick — replace each
  ``a.x < b`` by ``a.x + eps <= b``, bound ``eps <= 1``, and maximize
  ``eps``; the strict system is satisfiable iff the optimum is positive
  (over the rationals a positive slack can always be realized);
* disequalities branch: ``a.x != b`` splits into ``a.x < b`` or
  ``a.x > b``.  The number of disequalities is a query-size quantity, so
  the branching does not affect data complexity (Section 5).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from repro.constraints import bounds, simplex
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.terms import Variable
from repro.errors import ReservedVariableError
from repro.runtime import context as context_mod
from repro.runtime.context import QueryContext

#: Reserved variable for the strict-inequality slack.  The name cannot be
#: produced by :func:`repro.constraints.terms.variables`, and collisions
#: with user variables are checked at use.
_EPSILON_NAME = "__eps__"


def is_satisfiable(conj: ConjunctiveConstraint,
                   ctx: QueryContext | None = None) -> bool:
    """Decide satisfiability over the reals.

    The boolean answer is memoized on the conjunction's sorted atom
    tuple (a structural hash — atoms normalize on construction), so
    repeated checks of structurally equal conjunctions cost one cache
    probe instead of a simplex run.
    """
    if conj.is_syntactically_false():
        return False
    resolved = context_mod.resolve(ctx)

    def compute() -> bool:
        # Numeric screen first (three-valued; sound accepts via exact
        # verification, ε-sound rejects — see repro.constraints.kernel);
        # undecided systems take the exact simplex as before.
        from repro.constraints import kernel
        verdict = kernel.quick_satisfiable(conj, resolved)
        if verdict is not None:
            return verdict
        return sample_point(conj, resolved) is not None

    return resolved.memoized(("sat", conj.sorted_atoms()), compute)


def sample_point(conj: ConjunctiveConstraint,
                 ctx: QueryContext | None = None
                 ) -> Mapping[Variable, Fraction] | None:
    """A rational point satisfying ``conj``, or None when unsatisfiable.

    The returned point satisfies every atom, including strict
    inequalities and disequalities.  An interval prefilter
    (:mod:`repro.constraints.bounds`) refutes box-empty conjunctions
    before any simplex work; it is sound (refutation-only), so the
    answer is unchanged.
    """
    if conj.is_syntactically_false():
        return None
    resolved = context_mod.resolve(ctx)
    if resolved.prefilter_active() and bounds.refutes(conj, resolved):
        return None
    base = [a for a in conj.atoms if a.relop is not Relop.NE]
    disequalities = conj.disequalities()
    return _solve_branches(base, list(disequalities), conj.variables,
                           resolved)


def _solve_branches(base: list[LinearConstraint],
                    pending: list[LinearConstraint],
                    all_vars: frozenset[Variable],
                    ctx: QueryContext
                    ) -> Mapping[Variable, Fraction] | None:
    """DFS over the <,> splits of pending disequalities.

    The search is an explicit worklist rather than recursion: with many
    disequalities the recursive formulation would overflow Python's
    stack long before the 2^k leaves were enumerated, and the explicit
    loop gives the branch budget a single checkpoint.  Each worklist
    entry pairs the accumulated strict branches with the disequalities
    still to split; entries are pushed so that the ``<`` branch of the
    first pending disequality is explored first (the recursive order).
    """
    guard = ctx.guard
    stack: list[tuple[list[LinearConstraint], list[LinearConstraint]]] \
        = [(base, pending)]
    while stack:
        atoms, rest = stack.pop()
        if guard is not None:
            guard.tick_branch()
        if not rest:
            point = _solve_strict(atoms, all_vars, ctx)
            if point is not None:
                return point
            continue
        atom, remaining = rest[0], rest[1:]
        below, above = atom.split_disequality()
        stack.append((atoms + [above], remaining))
        stack.append((atoms + [below], remaining))
    return None


def _solve_strict(atoms: list[LinearConstraint],
                  all_vars: frozenset[Variable],
                  ctx: QueryContext
                  ) -> Mapping[Variable, Fraction] | None:
    """Feasible point of a system of =, <=, < atoms, or None."""
    strict = [a for a in atoms if a.relop is Relop.LT]
    non_strict = [a for a in atoms if a.relop is not Relop.LT]
    if not strict:
        point = simplex.feasible_point(non_strict, ctx=ctx)
        return _restrict(point, all_vars) if point is not None else None

    for atom in atoms:
        for var in atom.variables:
            if var.name == _EPSILON_NAME:
                raise ReservedVariableError(
                    f"variable name {_EPSILON_NAME!r} is reserved for "
                    "the strict-inequality slack")
    eps = Variable(_EPSILON_NAME)
    relaxed = list(non_strict)
    for atom in strict:
        relaxed.append(LinearConstraint.build(
            atom.expression + eps, Relop.LE, atom.bound))
    relaxed.append(LinearConstraint.build(
        eps.as_expression(), Relop.LE, 1))
    relaxed.append(LinearConstraint.build(
        -eps.as_expression(), Relop.LE, 0))

    result = simplex.solve(eps.as_expression(), relaxed, maximize=True,
                           ctx=ctx)
    if not result.is_optimal or result.value <= 0:
        return None
    point = dict(result.point)
    point.pop(eps, None)
    return _restrict(point, all_vars)


def _restrict(point: Mapping[Variable, Fraction] | None,
              all_vars: frozenset[Variable]
              ) -> Mapping[Variable, Fraction] | None:
    """Project the solver's point onto the constraint's variables, binding
    any variable the solver never saw to 0."""
    if point is None:
        return None
    result = {v: point.get(v, Fraction(0)) for v in all_vars}
    return result

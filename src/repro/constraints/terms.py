"""Variables and linear expressions over exact rational coefficients.

These are the atoms of the constraint engine.  Everything is immutable and
hashable so that constraint objects can serve as logical oids (Section 3 of
the paper: constraints are first-class objects whose identity is their
canonical form).

Arithmetic is exact (:class:`fractions.Fraction`): canonical forms, and
therefore object identity, must not depend on floating-point rounding.
"""

from __future__ import annotations

from fractions import Fraction
from numbers import Rational
from typing import Iterable, Iterator, Mapping, Union

from repro.errors import NonLinearError

#: Anything accepted where a rational number is required.
RationalLike = Union[int, Fraction, str, Rational]


def to_fraction(value: RationalLike) -> Fraction:
    """Coerce ``value`` to an exact :class:`Fraction`.

    Floats are accepted but converted via their decimal string
    representation (``Fraction(str(value))``) so that ``0.1`` becomes
    ``1/10`` rather than the binary expansion of the IEEE double.  This is
    what a user typing ``0.1`` means.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not rational constants")
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(str(value))
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    raise TypeError(f"cannot interpret {value!r} as a rational constant")


class Variable:
    """A real-valued constraint variable, identified by its name.

    Variables support arithmetic, producing :class:`LinearExpression`, so
    constraint systems read naturally::

        x, y = Variable("x"), Variable("y")
        atom = 2 * x + 3 * y <= 5
    """

    __slots__ = ("_name",)

    def __init__(self, name: str):
        if not name or not isinstance(name, str):
            raise ValueError(f"invalid variable name: {name!r}")
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    # -- conversion ---------------------------------------------------

    def as_expression(self) -> "LinearExpression":
        return LinearExpression({self: Fraction(1)}, Fraction(0))

    # -- identity -----------------------------------------------------
    #
    # ``==`` and ``!=`` between two Variables are *boolean* name identity:
    # Variables are dict/set keys throughout the engine, so their equality
    # protocol must stay a plain bool.  To build the equality *constraint*
    # between two variables use ``Eq(x, y)`` (from repro.constraints.atoms)
    # or promote one side: ``+x == y``.  Comparing a Variable against a
    # constant or expression builds a constraint atom, as the hash values
    # of Variables never coincide with those of numbers in practice.

    def __eq__(self, other: object):
        if isinstance(other, Variable):
            return self._name == other._name
        if isinstance(other, (LinearExpression, int, Fraction, float)):
            return self.as_expression() == other
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, Variable):
            return self._name != other._name
        if isinstance(other, (LinearExpression, int, Fraction, float)):
            return self.as_expression() != other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Variable", self._name))

    def __repr__(self) -> str:
        return f"Variable({self._name!r})"

    def __str__(self) -> str:
        return self._name

    def __lt__(self, other):
        return self.as_expression() < other

    def __le__(self, other):
        return self.as_expression() <= other

    def __gt__(self, other):
        return self.as_expression() > other

    def __ge__(self, other):
        return self.as_expression() >= other

    # -- arithmetic (delegate to LinearExpression) ---------------------

    def __add__(self, other):
        return self.as_expression() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.as_expression() - other

    def __rsub__(self, other):
        return (-self.as_expression()) + other

    def __mul__(self, other):
        return self.as_expression() * other

    __rmul__ = __mul__

    def __truediv__(self, other):
        return self.as_expression() / other

    def __neg__(self):
        return -self.as_expression()

    def __pos__(self):
        return self.as_expression()


def variables(names: str) -> tuple[Variable, ...]:
    """Create several variables at once from a space- or comma-separated
    string: ``x, y, z = variables("x y z")``."""
    parts = [p for chunk in names.split(",") for p in chunk.split()]
    return tuple(Variable(p) for p in parts)


class LinearExpression:
    """An immutable linear expression ``sum(coeff_i * var_i) + constant``.

    Zero coefficients are never stored.  Comparison operators build
    :class:`repro.constraints.atoms.LinearConstraint` atoms.
    """

    __slots__ = ("_coeffs", "_constant", "_hash")

    def __init__(self,
                 coeffs: Mapping[Variable, RationalLike] | None = None,
                 constant: RationalLike = 0):
        cleaned: dict[Variable, Fraction] = {}
        if coeffs:
            for var, coeff in coeffs.items():
                if not isinstance(var, Variable):
                    raise TypeError(f"expected Variable, got {var!r}")
                frac = to_fraction(coeff)
                if frac != 0:
                    cleaned[var] = frac
        self._coeffs = cleaned
        self._constant = to_fraction(constant)
        self._hash: int | None = None

    # -- construction helpers -----------------------------------------

    @classmethod
    def constant(cls, value: RationalLike) -> "LinearExpression":
        return cls({}, value)

    @classmethod
    def coerce(cls, value) -> "LinearExpression":
        """Coerce a variable, expression or rational constant."""
        if isinstance(value, LinearExpression):
            return value
        if isinstance(value, Variable):
            return value.as_expression()
        return cls.constant(to_fraction(value))

    # -- inspection ----------------------------------------------------

    @property
    def coefficients(self) -> Mapping[Variable, Fraction]:
        return dict(self._coeffs)

    @property
    def constant_term(self) -> Fraction:
        return self._constant

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(self._coeffs)

    def coefficient(self, var: Variable) -> Fraction:
        return self._coeffs.get(var, Fraction(0))

    def is_constant(self) -> bool:
        return not self._coeffs

    def __iter__(self) -> Iterator[tuple[Variable, Fraction]]:
        return iter(sorted(self._coeffs.items(), key=lambda kv: kv[0].name))

    # -- evaluation & substitution --------------------------------------

    def evaluate(self, point: Mapping[Variable, RationalLike]) -> Fraction:
        """Value of the expression at ``point`` (must bind every variable)."""
        total = self._constant
        for var, coeff in self._coeffs.items():
            if var not in point:
                raise KeyError(f"point does not bind variable {var.name!r}")
            total += coeff * to_fraction(point[var])
        return total

    def substitute(self, bindings: Mapping[Variable, "LinearExpression | Variable | RationalLike"]) -> "LinearExpression":
        """Replace variables by expressions (or constants) simultaneously."""
        result = LinearExpression.constant(self._constant)
        for var, coeff in self._coeffs.items():
            if var in bindings:
                result = result + LinearExpression.coerce(bindings[var]) * coeff
            else:
                result = result + LinearExpression({var: coeff})
        return result

    def rename(self, mapping: Mapping[Variable, Variable]) -> "LinearExpression":
        """Rename variables.  Distinct variables must stay distinct."""
        coeffs: dict[Variable, Fraction] = {}
        for var, coeff in self._coeffs.items():
            target = mapping.get(var, var)
            coeffs[target] = coeffs.get(target, Fraction(0)) + coeff
        return LinearExpression(coeffs, self._constant)

    # -- arithmetic -----------------------------------------------------

    def __add__(self, other) -> "LinearExpression":
        other = LinearExpression.coerce(other)
        coeffs = dict(self._coeffs)
        for var, coeff in other._coeffs.items():
            coeffs[var] = coeffs.get(var, Fraction(0)) + coeff
        return LinearExpression(coeffs, self._constant + other._constant)

    __radd__ = __add__

    def __sub__(self, other) -> "LinearExpression":
        return self + (-LinearExpression.coerce(other))

    def __rsub__(self, other) -> "LinearExpression":
        return (-self) + other

    def __neg__(self) -> "LinearExpression":
        return LinearExpression(
            {v: -c for v, c in self._coeffs.items()}, -self._constant)

    def __pos__(self) -> "LinearExpression":
        return self

    def __mul__(self, other) -> "LinearExpression":
        if isinstance(other, (LinearExpression, Variable)):
            other_expr = LinearExpression.coerce(other)
            if other_expr.is_constant():
                other = other_expr.constant_term
            elif self.is_constant():
                return other_expr * self._constant
            else:
                raise NonLinearError(
                    "product of two non-constant expressions is not linear")
        scalar = to_fraction(other)
        return LinearExpression(
            {v: c * scalar for v, c in self._coeffs.items()},
            self._constant * scalar)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "LinearExpression":
        scalar = to_fraction(other)
        if scalar == 0:
            raise ZeroDivisionError("division of expression by zero")
        return self * (Fraction(1) / scalar)

    # -- comparisons build constraint atoms ------------------------------

    def __le__(self, other):
        from repro.constraints.atoms import LinearConstraint, Relop
        return LinearConstraint.build(self, Relop.LE, other)

    def __ge__(self, other):
        from repro.constraints.atoms import LinearConstraint, Relop
        return LinearConstraint.build(self, Relop.GE, other)

    def __lt__(self, other):
        from repro.constraints.atoms import LinearConstraint, Relop
        return LinearConstraint.build(self, Relop.LT, other)

    def __gt__(self, other):
        from repro.constraints.atoms import LinearConstraint, Relop
        return LinearConstraint.build(self, Relop.GT, other)

    def __eq__(self, other):
        if isinstance(other, LinearExpression) and self._same(other):
            return True
        if isinstance(other, (LinearExpression, Variable, int, Fraction, float, str)):
            from repro.constraints.atoms import LinearConstraint, Relop
            return LinearConstraint.build(self, Relop.EQ, other)
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, LinearExpression) and self._same(other):
            return False
        if isinstance(other, (LinearExpression, Variable, int, Fraction, float, str)):
            from repro.constraints.atoms import LinearConstraint, Relop
            return LinearConstraint.build(self, Relop.NE, other)
        return NotImplemented

    # -- structural identity ---------------------------------------------

    def _same(self, other: "LinearExpression") -> bool:
        """Structural equality (used for hashing and canonical forms)."""
        return (self._constant == other._constant
                and self._coeffs == other._coeffs)

    def structurally_equal(self, other: "LinearExpression") -> bool:
        return isinstance(other, LinearExpression) and self._same(other)

    def __hash__(self) -> int:
        if self._hash is None:
            items = tuple(sorted(((v.name, c) for v, c in self._coeffs.items())))
            self._hash = hash(("LinearExpression", items, self._constant))
        return self._hash

    # -- display ----------------------------------------------------------

    def __repr__(self) -> str:
        return f"LinearExpression({self})"

    def __str__(self) -> str:
        parts: list[str] = []
        for var, coeff in sorted(self._coeffs.items(), key=lambda kv: kv[0].name):
            if coeff == 1:
                term = var.name
            elif coeff == -1:
                term = f"-{var.name}"
            else:
                term = f"{format_fraction(coeff)}*{var.name}"
            if parts and not term.startswith("-"):
                parts.append(f"+ {term}")
            elif parts:
                parts.append(f"- {term[1:]}")
            else:
                parts.append(term)
        if self._constant != 0 or not parts:
            const = format_fraction(self._constant)
            if parts and self._constant > 0:
                parts.append(f"+ {const}")
            elif parts:
                parts.append(f"- {format_fraction(-self._constant)}")
            else:
                parts.append(const)
        return " ".join(parts)


def format_fraction(value: Fraction) -> str:
    """Render a fraction compactly (``3`` not ``3/1``)."""
    if value.denominator == 1:
        return str(value.numerator)
    return f"{value.numerator}/{value.denominator}"


def sum_expressions(exprs: Iterable) -> LinearExpression:
    """Sum an iterable of expressions/variables/constants."""
    total = LinearExpression.constant(0)
    for expr in exprs:
        total = total + LinearExpression.coerce(expr)
    return total

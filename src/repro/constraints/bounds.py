"""Cheap interval bounds — the geometric prefilter for the solver.

"The evaluation of geometric queries" literature splits constraint
processing into a cheap geometric phase and an exact symbolic phase;
this module is the cheap phase.  From the *single-variable* atoms of a
conjunction it derives per-variable lower/upper bounds in O(atoms),
producing an axis-aligned bounding box that **over-approximates** the
conjunction's point set.  Two sound refutations follow:

* a conjunction whose multi-variable atoms cannot hold anywhere on the
  box is unsatisfiable (:func:`refutes`);
* two constraints whose boxes are disjoint on a shared variable have an
  empty intersection (:func:`boxes_disjoint`) — the join prefilter.

Because the box is an over-approximation, the prefilter can only prove
*emptiness*; it never claims satisfiability, so the exact simplex
remains the sole source of positive answers and the paper's semantics
are preserved verbatim.

Unlike :mod:`repro.constraints.filtering` (which computes *exact*
interval hulls with one LP per dimension end), nothing here ever calls
the simplex — this is the filter in front of it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.terms import Variable
from repro.runtime import context as context_mod

#: A half-open-aware interval: ``(lo, lo_open, hi, hi_open)``; ``None``
#: endpoints mark unboundedness.
Interval = tuple[Fraction | None, bool, Fraction | None, bool]

#: The whole real line.
FULL: Interval = (None, False, None, False)

# The check/refutation counters moved into
# ``ExecutionStats.box_checks`` / ``box_refutations`` on the
# :class:`~repro.runtime.context.QueryContext`: the prefilter books its
# traffic once, on the context doing the work, and worker snapshots
# merge through the generic stats merge instead of a second
# module-global absorb (which double-counted the same traffic).  The
# three functions below survive as thin deprecated shims over the
# *ambient* context's account.


def stats() -> dict[str, int]:
    """Deprecated shim: the ambient context's check/refutation
    counters, in the old dict shape.  Prefer
    ``ctx.stats.box_checks`` / ``ctx.stats.box_refutations``."""
    acct = context_mod.current_context().stats
    return {"checks": acct.box_checks,
            "refutations": acct.box_refutations}


def reset_stats() -> None:
    """Deprecated shim: zero the ambient context's box counters."""
    acct = context_mod.current_context().stats
    acct.box_checks = 0
    acct.box_refutations = 0


def absorb(delta: Mapping[str, int]) -> None:
    """Deprecated shim: fold old-shape counter deltas into the ambient
    context's account.  The parallel evaluator no longer calls this —
    worker snapshots arrive through ``ExecutionStats.merge``."""
    acct = context_mod.current_context().stats
    acct.box_checks += delta.get("checks", 0)
    acct.box_refutations += delta.get("refutations", 0)


# ---------------------------------------------------------------------------
# Box derivation
# ---------------------------------------------------------------------------


def _tighten(interval: Interval, relop: Relop, value: Fraction
             ) -> Interval | None:
    """Intersect ``interval`` with ``var relop value``; None = empty."""
    lo, lo_open, hi, hi_open = interval
    if relop in (Relop.EQ, Relop.LE, Relop.LT):
        strict = relop is Relop.LT
        if hi is None or value < hi or (value == hi and strict
                                        and not hi_open):
            hi, hi_open = value, strict
    if relop in (Relop.EQ, Relop.GE, Relop.GT):
        strict = relop is Relop.GT
        if lo is None or value > lo or (value == lo and strict
                                        and not lo_open):
            lo, lo_open = value, strict
    if lo is not None and hi is not None:
        if lo > hi or (lo == hi and (lo_open or hi_open)):
            return None
    return (lo, lo_open, hi, hi_open)


def box_of(atoms: Iterable[LinearConstraint]
           ) -> dict[Variable, Interval] | None:
    """Per-variable bounds from the single-variable, non-``!=`` atoms.

    Returns ``None`` when the bounds alone are contradictory (the box —
    and hence the point set — is empty).  Multi-variable atoms are
    ignored here; :func:`refutes` evaluates them *over* the box.
    """
    box: dict[Variable, Interval] = {}
    for atom in atoms:
        if atom.relop is Relop.NE:
            continue
        coeffs = atom.expression.coefficients
        if not coeffs:
            if not atom.trivial_truth():
                return None
            continue
        if len(coeffs) != 1:
            continue
        (var, coeff), = coeffs.items()
        value = atom.bound / coeff
        relop = atom.relop if coeff > 0 else atom.relop.flipped
        tightened = _tighten(box.get(var, FULL), relop, value)
        if tightened is None:
            return None
        box[var] = tightened
    return box


# ---------------------------------------------------------------------------
# Interval evaluation of general atoms over a box
# ---------------------------------------------------------------------------


def _extremum(coeffs: Mapping[Variable, Fraction],
              box: Mapping[Variable, Interval], lower: bool
              ) -> tuple[Fraction | None, bool]:
    """(inf, attained) or (sup, attained) of ``sum c_i * x_i`` over the
    box; ``None`` marks an unbounded extremum."""
    total = Fraction(0)
    attained = True
    for var, coeff in coeffs.items():
        lo, lo_open, hi, hi_open = box.get(var, FULL)
        # The minimizing end for positive coefficients is ``lo``; signs
        # and the min/max direction flip which end is used.
        if (coeff > 0) == lower:
            end, open_ = lo, lo_open
        else:
            end, open_ = hi, hi_open
        if end is None:
            return None, False
        total += coeff * end
        attained = attained and not open_
    return total, attained


def _atom_impossible(atom: LinearConstraint,
                     box: Mapping[Variable, Interval]) -> bool:
    """Can ``atom`` hold nowhere on ``box``?  (Sound, not complete.)"""
    coeffs = atom.expression.coefficients
    if not coeffs:
        return not atom.trivial_truth()
    bound = atom.bound
    inf, inf_att = _extremum(coeffs, box, lower=True)
    if atom.relop is Relop.LE:
        return inf is not None and (inf > bound
                                    or (inf == bound and not inf_att))
    if atom.relop is Relop.LT:
        return inf is not None and inf >= bound
    sup, sup_att = _extremum(coeffs, box, lower=False)
    if atom.relop is Relop.EQ:
        if inf is not None and (inf > bound
                                or (inf == bound and not inf_att)):
            return True
        return sup is not None and (sup < bound
                                    or (sup == bound and not sup_att))
    if atom.relop is Relop.NE:
        # Only refutable when the box pins the expression to the bound.
        return (inf is not None and sup is not None
                and inf == sup == bound and inf_att and sup_att)
    return False


def refutes(conj: ConjunctiveConstraint, ctx=None) -> bool:
    """True when the box proves ``conj`` unsatisfiable (sound; a False
    answer says nothing).  Checks are booked on the context's
    per-execution stats (once — workers merge generically)."""
    stats_acct = context_mod.resolve(ctx).stats
    stats_acct.box_checks += 1
    box = box_of(conj.atoms)
    if box is None:
        stats_acct.box_refutations += 1
        return True
    for atom in conj.atoms:
        if len(atom.expression.coefficients) > 1 \
                and _atom_impossible(atom, box):
            stats_acct.box_refutations += 1
            return True
    return False


# ---------------------------------------------------------------------------
# Boxes of whole constraints, and disjointness
# ---------------------------------------------------------------------------


def _hull(a: Interval, b: Interval) -> Interval:
    alo, alo_open, ahi, ahi_open = a
    blo, blo_open, bhi, bhi_open = b
    if alo is None or blo is None:
        lo, lo_open = None, False
    elif alo == blo:
        lo, lo_open = alo, alo_open and blo_open
    else:
        lo, lo_open = (alo, alo_open) if alo < blo else (blo, blo_open)
    if ahi is None or bhi is None:
        hi, hi_open = None, False
    elif ahi == bhi:
        hi, hi_open = ahi, ahi_open and bhi_open
    else:
        hi, hi_open = (ahi, ahi_open) if ahi > bhi else (bhi, bhi_open)
    return (lo, lo_open, hi, hi_open)


def constraint_box(constraint) -> dict[Variable, Interval] | None:
    """Bounding box of any constraint-family member, from syntax alone.

    Disjunctions take the hull of their disjunct boxes; existential
    bodies are used as-is (a box over free *and* quantified variables
    over-approximates the projection onto the free ones).  ``None``
    means every disjunct's box was already empty.
    """
    from repro.constraints.disjunctive import DisjunctiveConstraint
    from repro.constraints.existential import (
        DisjunctiveExistentialConstraint,
        ExistentialConjunctiveConstraint,
    )
    if isinstance(constraint, ConjunctiveConstraint):
        return box_of(constraint.atoms)
    if isinstance(constraint, ExistentialConjunctiveConstraint):
        return box_of(constraint.body.atoms)
    if isinstance(constraint, (DisjunctiveConstraint,
                               DisjunctiveExistentialConstraint)):
        bodies = [d.body if isinstance(
                      d, ExistentialConjunctiveConstraint) else d
                  for d in constraint.disjuncts]
        hull: dict[Variable, Interval] | None = None
        for body in bodies:
            box = box_of(body.atoms)
            if box is None:
                continue
            if hull is None:
                hull = dict(box)
                continue
            # A variable missing from either box is unbounded there, so
            # its hull entry is the full line — simply drop it.
            for var in list(hull):
                if var in box:
                    hull[var] = _hull(hull[var], box[var])
                else:
                    del hull[var]
        return hull
    raise TypeError(f"not a constraint: {constraint!r}")


def intervals_disjoint(a: Interval, b: Interval) -> bool:
    alo, alo_open, ahi, ahi_open = a
    blo, blo_open, bhi, bhi_open = b
    if ahi is not None and blo is not None:
        if ahi < blo or (ahi == blo and (ahi_open or blo_open)):
            return True
    if bhi is not None and alo is not None:
        if bhi < alo or (bhi == alo and (bhi_open or alo_open)):
            return True
    return False


def boxes_disjoint(a: Mapping[Variable, Interval] | None,
                   b: Mapping[Variable, Interval] | None,
                   ctx=None) -> bool:
    """True when the two point sets provably cannot intersect: either
    box is empty, or they are separated along some shared variable."""
    stats_acct = context_mod.resolve(ctx).stats
    stats_acct.box_checks += 1
    if a is None or b is None:
        stats_acct.box_refutations += 1
        return True
    for var, interval in a.items():
        other = b.get(var)
        if other is not None and intervals_disjoint(interval, other):
            stats_acct.box_refutations += 1
            return True
    return False

"""Linear arithmetic constraint atoms.

A *linear arithmetic constraint* in the paper (Section 3.1) has the form::

    r1*x1 + ... + rm*xm  relop  r      relop in {=, <=, >=, <, >, !=}

Atoms are stored in a normal form with the relation drawn from
``{=, <=, <, !=}`` (``>=``/``>`` are flipped on construction) and with the
coefficient vector scaled so that structurally-equal atoms compare equal:

* the non-variable part is moved entirely to the right-hand side,
* coefficients are divided by the gcd of their numerators / lcm of their
  denominators,
* for ``=`` and ``!=`` (which are sign-symmetric) the leading coefficient
  (of the alphabetically first variable) is made positive.

This normalization is the first half of the paper's canonical form; the
rest (satisfiability pruning, duplicate removal) lives in
:mod:`repro.constraints.canonical`.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from math import gcd
from typing import Mapping

from repro.errors import ConstraintError
from repro.constraints.terms import (
    LinearExpression,
    RationalLike,
    Variable,
    format_fraction,
)


class Relop(enum.Enum):
    """Relational operator of a constraint atom."""

    EQ = "="
    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"
    NE = "!="

    @property
    def is_strict(self) -> bool:
        return self in (Relop.LT, Relop.GT)

    @property
    def flipped(self) -> "Relop":
        """The operator with both sides exchanged."""
        flips = {
            Relop.LE: Relop.GE, Relop.GE: Relop.LE,
            Relop.LT: Relop.GT, Relop.GT: Relop.LT,
            Relop.EQ: Relop.EQ, Relop.NE: Relop.NE,
        }
        return flips[self]

    @property
    def negated(self) -> "Relop":
        """The operator of the complementary constraint."""
        negations = {
            Relop.LE: Relop.GT, Relop.GT: Relop.LE,
            Relop.GE: Relop.LT, Relop.LT: Relop.GE,
            Relop.EQ: Relop.NE, Relop.NE: Relop.EQ,
        }
        return negations[self]

    def holds(self, lhs: Fraction, rhs: Fraction) -> bool:
        if self is Relop.EQ:
            return lhs == rhs
        if self is Relop.LE:
            return lhs <= rhs
        if self is Relop.LT:
            return lhs < rhs
        if self is Relop.GE:
            return lhs >= rhs
        if self is Relop.GT:
            return lhs > rhs
        return lhs != rhs


class LinearConstraint:
    """A normalized linear arithmetic constraint ``expr relop bound``.

    ``expr`` has no constant term (it was folded into ``bound``) and the
    stored ``relop`` is one of ``=, <=, <, !=``.

    Instances are immutable and hashable; structural equality after
    normalization is what the paper calls "deletion of syntactic
    duplicates".
    """

    __slots__ = ("_expr", "_relop", "_bound", "_hash")

    def __init__(self, expr: LinearExpression, relop: Relop,
                 bound: Fraction):
        # Internal constructor: callers should use :meth:`build`.
        self._expr = expr
        self._relop = relop
        self._bound = bound
        self._hash: int | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(cls, lhs, relop: Relop, rhs) -> "LinearConstraint":
        """Build and normalize an atom from arbitrary linear sides."""
        lhs = LinearExpression.coerce(lhs)
        rhs = LinearExpression.coerce(rhs)
        diff = lhs - rhs
        expr = LinearExpression(diff.coefficients, 0)
        bound = -diff.constant_term
        if relop in (Relop.GE, Relop.GT):
            expr, bound, relop = -expr, -bound, relop.flipped
        return cls._normalized(expr, relop, bound)

    @classmethod
    def _normalized(cls, expr: LinearExpression, relop: Relop,
                    bound: Fraction) -> "LinearConstraint":
        coeffs = expr.coefficients
        if not coeffs:
            # Trivial atoms normalize to the canonical TRUE (0 = 0) or
            # FALSE (0 = 1) so that semantically-equal trivia compare
            # equal.
            truth = relop.holds(Fraction(0), bound)
            return cls(LinearExpression({}, 0), Relop.EQ,
                       Fraction(0 if truth else 1))
        if coeffs:
            scale = _normalizing_scale(list(coeffs.values()) + [bound])
            if relop in (Relop.EQ, Relop.NE):
                lead_var = min(coeffs, key=lambda v: v.name)
                if coeffs[lead_var] < 0:
                    scale = -scale
            expr = LinearExpression(
                {v: c * scale for v, c in coeffs.items()}, 0)
            bound = bound * scale
        return cls(expr, relop, bound)

    # -- inspection -------------------------------------------------------

    @property
    def expression(self) -> LinearExpression:
        return self._expr

    @property
    def relop(self) -> Relop:
        return self._relop

    @property
    def bound(self) -> Fraction:
        return self._bound

    @property
    def variables(self) -> frozenset[Variable]:
        return self._expr.variables

    @property
    def is_trivial(self) -> bool:
        """True when the atom mentions no variables (``0 relop c``)."""
        return self._expr.is_constant()

    def trivial_truth(self) -> bool:
        """Truth value of a trivial atom (raises if not trivial)."""
        if not self.is_trivial:
            raise ConstraintError("atom is not trivial")
        return self._relop.holds(Fraction(0), self._bound)

    def is_equality(self) -> bool:
        return self._relop is Relop.EQ

    def is_disequality(self) -> bool:
        return self._relop is Relop.NE

    def is_strict(self) -> bool:
        return self._relop is Relop.LT

    # -- logical operations ------------------------------------------------

    def negate(self) -> "LinearConstraint":
        """Complement of the atom (always a single atom).

        ``=`` negates to ``!=``; callers that need a strict-inequality
        split of that result use :meth:`split_disequality`.
        """
        return LinearConstraint.build(self._expr, self._relop.negated,
                                      self._bound)

    def split_disequality(self) -> tuple["LinearConstraint", "LinearConstraint"]:
        """``expr != b`` as the disjunction ``expr < b  or  expr > b``."""
        if self._relop is not Relop.NE:
            raise ConstraintError("not a disequality")
        return (LinearConstraint.build(self._expr, Relop.LT, self._bound),
                LinearConstraint.build(self._expr, Relop.GT, self._bound))

    def weakened(self) -> "LinearConstraint":
        """The non-strict version of a strict inequality (``<`` -> ``<=``)."""
        if self._relop is Relop.LT:
            return LinearConstraint.build(self._expr, Relop.LE, self._bound)
        return self

    # -- evaluation & substitution ------------------------------------------

    def holds_at(self, point: Mapping[Variable, RationalLike]) -> bool:
        """Truth of the atom at a concrete rational point."""
        return self._relop.holds(self._expr.evaluate(point), self._bound)

    def substitute(self, bindings) -> "LinearConstraint":
        new_expr = self._expr.substitute(bindings)
        return LinearConstraint.build(new_expr, self._relop, self._bound)

    def rename(self, mapping: Mapping[Variable, Variable]) -> "LinearConstraint":
        return LinearConstraint.build(
            self._expr.rename(mapping), self._relop, self._bound)

    # -- identity --------------------------------------------------------

    def _key(self):
        items = tuple(sorted(
            (v.name, c) for v, c in self._expr.coefficients.items()))
        return (items, self._relop, self._bound)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearConstraint):
            return NotImplemented
        return self._key() == other._key()

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, LinearConstraint):
            return NotImplemented
        return self._key() != other._key()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("LinearConstraint",) + self._key())
        return self._hash

    def __bool__(self) -> bool:
        # Guard against ``if a == b`` style mistakes on expressions: a
        # constraint has no truth value without a variable assignment,
        # except the trivial constant case.
        if self.is_trivial:
            return self.trivial_truth()
        raise TypeError(
            "a LinearConstraint over variables has no boolean value; "
            "use ConjunctiveConstraint(...).is_satisfiable() or holds_at()")

    def sort_key(self) -> tuple:
        """Deterministic ordering key used by canonical forms."""
        items, relop, bound = self._key()
        return (items, relop.value, bound)

    # -- display ------------------------------------------------------------

    def __repr__(self) -> str:
        return f"LinearConstraint({self})"

    def __str__(self) -> str:
        return f"{self._expr} {self._relop.value} {format_fraction(self._bound)}"


def _normalizing_scale(values: list[Fraction]) -> Fraction:
    """Positive scale factor making the values integral with gcd 1.

    Only the variable coefficients drive the scale; the bound rides along
    (it is included so the result stays integral when convenient, but a
    non-integral bound is fine).
    """
    numerators = [v.numerator for v in values[:-1] if v != 0]
    denominators = [v.denominator for v in values[:-1]]
    if not numerators:
        return Fraction(1)
    lcm = 1
    for d in denominators:
        lcm = lcm * d // gcd(lcm, d)
    scaled = [abs(n) * (lcm // d) for n, d in
              ((v.numerator, v.denominator) for v in values[:-1]) if n != 0]
    g = 0
    for s in scaled:
        g = gcd(g, s)
    return Fraction(lcm, g if g else 1)


# ---------------------------------------------------------------------------
# Constructor helpers (unambiguous alternatives to operator overloading)
# ---------------------------------------------------------------------------


def Eq(lhs, rhs) -> LinearConstraint:
    """Equality constraint ``lhs = rhs`` (works for two bare Variables,
    where ``==`` means name identity instead)."""
    return LinearConstraint.build(lhs, Relop.EQ, rhs)


def Ne(lhs, rhs) -> LinearConstraint:
    """Disequality constraint ``lhs != rhs``."""
    return LinearConstraint.build(lhs, Relop.NE, rhs)


def Le(lhs, rhs) -> LinearConstraint:
    return LinearConstraint.build(lhs, Relop.LE, rhs)


def Lt(lhs, rhs) -> LinearConstraint:
    return LinearConstraint.build(lhs, Relop.LT, rhs)


def Ge(lhs, rhs) -> LinearConstraint:
    return LinearConstraint.build(lhs, Relop.GE, rhs)


def Gt(lhs, rhs) -> LinearConstraint:
    return LinearConstraint.build(lhs, Relop.GT, rhs)

"""Economical filtering: bounding-box pre-tests for constraint joins.

The paper's related-work section criticizes spatial DBMS extensions for
"lacking global economical filtering and deep optimization"; the
standard constraint-database answer (cf. [BJM93]) is a two-phase
filter-and-refine scheme: cheap interval-box tests prune candidate
pairs before the exact LP-based test runs.  This module provides:

* :func:`interval_hull` — the exact per-dimension bounding box of a CST
  object (computed once, by 2n LPs);
* :class:`BoxIndex` — a collection index answering box-overlap
  candidate queries;
* :func:`overlap_join` — the exact pairwise overlap join with and
  without the prefilter (experiment E14 measures the difference).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Sequence

from repro.constraints.cst_object import CSTObject
from repro.errors import DimensionError

#: A per-dimension closed interval; None marks an unbounded side.
Interval = tuple[Fraction | None, Fraction | None]


def interval_hull(obj: CSTObject) -> list[Interval]:
    """The exact bounding box (see :meth:`CSTObject.bounding_box`)."""
    return obj.bounding_box()


def boxes_overlap(a: Sequence[Interval], b: Sequence[Interval]) -> bool:
    """Interval-box intersection test (unbounded sides always pass)."""
    if len(a) != len(b):
        raise DimensionError("boxes of different dimension")
    for (alo, ahi), (blo, bhi) in zip(a, b):
        if ahi is not None and blo is not None and ahi < blo:
            return False
        if bhi is not None and alo is not None and bhi < alo:
            return False
    return True


@dataclass
class _Entry:
    key: Hashable
    obj: CSTObject
    box: list[Interval]


class BoxIndex:
    """A (linear-scan) bounding-box index over CST objects.

    Boxes are exact hulls computed once at insert; candidate queries
    cost one interval test per entry instead of one LP — the classic
    filter step.  (A real system would use an R-tree here; a linear
    scan of interval tests already captures the filter/refine cost gap
    the benchmark measures, since the refine step is orders of
    magnitude more expensive per pair.)
    """

    def __init__(self, dimension: int):
        self._dimension = dimension
        self._entries: list[_Entry] = []

    @property
    def dimension(self) -> int:
        return self._dimension

    def __len__(self) -> int:
        return len(self._entries)

    def insert(self, key: Hashable, obj: CSTObject) -> None:
        if obj.dimension != self._dimension:
            raise DimensionError(
                f"index is {self._dimension}-dimensional, object is "
                f"{obj.dimension}-dimensional")
        self._entries.append(_Entry(key, obj, interval_hull(obj)))

    def extend(self, items: Iterable[tuple[Hashable, CSTObject]]
               ) -> None:
        for key, obj in items:
            self.insert(key, obj)

    def candidates(self, obj: CSTObject) -> list[Hashable]:
        """Keys whose box overlaps ``obj``'s box (a superset of the
        true overlaps)."""
        probe = interval_hull(obj)
        return [e.key for e in self._entries
                if boxes_overlap(e.box, probe)]

    def overlapping(self, obj: CSTObject) -> list[Hashable]:
        """Keys whose *object* exactly overlaps ``obj`` (filter +
        refine)."""
        probe_box = interval_hull(obj)
        return [e.key for e in self._entries
                if boxes_overlap(e.box, probe_box)
                and e.obj.overlaps(obj)]


@dataclass(frozen=True)
class JoinStats:
    pairs_considered: int
    exact_tests: int
    matches: int


def overlap_join(items: Sequence[tuple[Hashable, CSTObject]],
                 prefilter: bool = True
                 ) -> tuple[list[tuple[Hashable, Hashable]], JoinStats]:
    """All unordered pairs of exactly-overlapping objects.

    With ``prefilter`` the exact (LP) test only runs on pairs whose
    bounding boxes overlap; without it, on every pair.  Returns the
    matches plus counters showing how much work the filter saved.
    """
    boxes = [interval_hull(obj) for _, obj in items] if prefilter \
        else None
    matches: list[tuple[Hashable, Hashable]] = []
    pairs = 0
    exact = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            pairs += 1
            if prefilter and not boxes_overlap(boxes[i], boxes[j]):
                continue
            exact += 1
            if items[i][1].overlaps(items[j][1]):
                matches.append((items[i][0], items[j][0]))
    return matches, JoinStats(pairs, exact, len(matches))

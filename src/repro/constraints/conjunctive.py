"""Conjunctive constraints: conjunctions of linear arithmetic atoms.

A :class:`ConjunctiveConstraint` geometrically denotes a convex polyhedron
(possibly with faces removed by strict atoms and hyperplanes removed by
disequalities).  It is the base family of Section 3.1 of the paper; the
disjunctive and existential families are built on top of it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import ConstraintError
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.terms import (
    LinearExpression,
    RationalLike,
    Variable,
    to_fraction,
)


class ConjunctiveConstraint:
    """An immutable conjunction of :class:`LinearConstraint` atoms.

    Trivially-true atoms are dropped at construction; a trivially-false
    atom collapses the whole conjunction to the canonical unsatisfiable
    conjunction ``FALSE``.  Syntactic duplicates are removed (one of the
    paper's two always-on simplifications).
    """

    __slots__ = ("_atoms", "_hash")

    def __init__(self, atoms: Iterable[LinearConstraint] = ()):
        cleaned: list[LinearConstraint] = []
        seen: set[LinearConstraint] = set()
        false = False
        for atom in atoms:
            if not isinstance(atom, LinearConstraint):
                raise TypeError(f"expected LinearConstraint, got {atom!r}")
            if atom.is_trivial:
                if not atom.trivial_truth():
                    false = True
                    break
                continue
            if atom not in seen:
                seen.add(atom)
                cleaned.append(atom)
        if false:
            cleaned = [_FALSE_ATOM]
        self._atoms = tuple(cleaned)
        self._hash: int | None = None

    # -- constructors ---------------------------------------------------

    @classmethod
    def true(cls) -> "ConjunctiveConstraint":
        """The empty conjunction (all of space)."""
        return cls(())

    @classmethod
    def false(cls) -> "ConjunctiveConstraint":
        """The canonical unsatisfiable conjunction."""
        return cls((_FALSE_ATOM,))

    @classmethod
    def of(cls, *atoms: LinearConstraint) -> "ConjunctiveConstraint":
        return cls(atoms)

    # -- inspection -------------------------------------------------------

    @property
    def atoms(self) -> tuple[LinearConstraint, ...]:
        return self._atoms

    @property
    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for atom in self._atoms:
            result.update(atom.variables)
        return frozenset(result)

    def is_true(self) -> bool:
        """Syntactically the empty conjunction."""
        return not self._atoms

    def is_syntactically_false(self) -> bool:
        return self._atoms == (_FALSE_ATOM,)

    def __len__(self) -> int:
        return len(self._atoms)

    def __iter__(self) -> Iterator[LinearConstraint]:
        return iter(self._atoms)

    def equalities(self) -> tuple[LinearConstraint, ...]:
        return tuple(a for a in self._atoms if a.relop is Relop.EQ)

    def inequalities(self) -> tuple[LinearConstraint, ...]:
        return tuple(a for a in self._atoms
                     if a.relop in (Relop.LE, Relop.LT))

    def disequalities(self) -> tuple[LinearConstraint, ...]:
        return tuple(a for a in self._atoms if a.relop is Relop.NE)

    # -- logical operations --------------------------------------------------

    def conjoin(self, other: "ConjunctiveConstraint | LinearConstraint"
                ) -> "ConjunctiveConstraint":
        """Conjunction (geometric intersection)."""
        if isinstance(other, LinearConstraint):
            other_atoms: Sequence[LinearConstraint] = (other,)
        else:
            other_atoms = other._atoms
        return ConjunctiveConstraint(self._atoms + tuple(other_atoms))

    __and__ = conjoin

    def holds_at(self, point: Mapping[Variable, RationalLike]) -> bool:
        """Membership test of a concrete rational point."""
        frozen = {v: to_fraction(c) for v, c in point.items()}
        return all(atom.holds_at(frozen) for atom in self._atoms)

    def substitute(self, bindings) -> "ConjunctiveConstraint":
        return ConjunctiveConstraint(
            atom.substitute(bindings) for atom in self._atoms)

    def rename(self, mapping: Mapping[Variable, Variable]
               ) -> "ConjunctiveConstraint":
        return ConjunctiveConstraint(
            atom.rename(mapping) for atom in self._atoms)

    # -- satisfiability / entailment (delegated) --------------------------------

    def is_satisfiable(self, ctx=None) -> bool:
        from repro.constraints import satisfiability
        return satisfiability.is_satisfiable(self, ctx)

    def sample_point(self, ctx=None) -> Mapping[Variable, Fraction] | None:
        from repro.constraints import satisfiability
        return satisfiability.sample_point(self, ctx)

    def entails(self, other: "ConjunctiveConstraint") -> bool:
        from repro.constraints import implication
        return implication.conjunctive_entails_conjunctive(self, other)

    # -- equality elimination ----------------------------------------------------

    def eliminate_equalities(self, keep: frozenset[Variable] | None = None
                             ) -> "ConjunctiveConstraint":
        """Substitute equalities out by Gaussian elimination.

        Each equality atom is solved for one of its variables (preferring
        variables not in ``keep``) and substituted into the remaining
        atoms.  The result is equisatisfiable and, restricted to the
        surviving variables, equivalent; it is used to shrink systems
        before Fourier-Motzkin or simplex runs.  Equalities purely over
        ``keep`` variables are retained.
        """
        keep = keep or frozenset()
        atoms = list(self._atoms)
        changed = True
        while changed:
            changed = False
            for i, atom in enumerate(atoms):
                if atom.relop is not Relop.EQ:
                    continue
                candidates = [v for v in atom.variables if v not in keep]
                if not candidates:
                    continue
                var = min(candidates, key=lambda v: v.name)
                solution = _solve_for(atom, var)
                rest = atoms[:i] + atoms[i + 1:]
                atoms = [a.substitute({var: solution}) for a in rest]
                changed = True
                break
        return ConjunctiveConstraint(atoms)

    # -- variable bounds -----------------------------------------------------------

    def variable_bounds(self, var: Variable
                        ) -> tuple[Fraction | None, Fraction | None]:
        """Exact (min, max) of ``var`` over the region; None = unbounded.

        Raises :class:`ConstraintError` on an unsatisfiable region.
        """
        from repro.constraints import lp
        lo = lp.minimize(var.as_expression(), self)
        hi = lp.maximize(var.as_expression(), self)
        return lo.value if lo.is_optimal else None, \
            hi.value if hi.is_optimal else None

    # -- identity --------------------------------------------------------------------

    def sorted_atoms(self) -> tuple[LinearConstraint, ...]:
        return tuple(sorted(self._atoms, key=LinearConstraint.sort_key))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveConstraint):
            return NotImplemented
        return self.sorted_atoms() == other.sorted_atoms()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("ConjunctiveConstraint", self.sorted_atoms()))
        return self._hash

    def __repr__(self) -> str:
        return f"ConjunctiveConstraint({self})"

    def __str__(self) -> str:
        if not self._atoms:
            return "TRUE"
        if self.is_syntactically_false():
            return "FALSE"
        return " and ".join(str(a) for a in self.sorted_atoms())


def _solve_for(atom: LinearConstraint, var: Variable) -> LinearExpression:
    """Solve the equality ``atom`` for ``var``."""
    if atom.relop is not Relop.EQ:
        raise ConstraintError("can only solve equalities")
    coeff = atom.expression.coefficient(var)
    if coeff == 0:
        raise ConstraintError(f"{var} does not occur in {atom}")
    rest = atom.expression - LinearExpression({var: coeff})
    return (LinearExpression.constant(atom.bound) - rest) / coeff


#: The canonical false atom ``0 = 1`` — kept trivial-false on purpose so a
#: collapsed conjunction still carries one atom to print and hash.
_FALSE_ATOM = LinearConstraint(
    LinearExpression({}, 0), Relop.EQ, Fraction(1))

"""Column-major float64 packing of constraint systems.

The exact engine stores constraints as trees of `Fraction` atoms — the
right representation for canonical forms (Section 3.1: logical identity
must not depend on rounding), and the wrong one for bulk arithmetic.
This module is the bridge: it packs conjunctive bodies into flat float
coefficient matrices the numeric kernel (:mod:`repro.constraints.
kernel`) consumes in batch, one packing per system instead of one
`Fraction` tree walk per solver probe.

Three layers:

* :class:`PackedSystem` — one conjunctive body as float rows over the
  body's own (system-local) variable order, with the exact atoms kept
  alongside for the kernel's rational verification of accepts;
* :class:`ConstraintMatrix` — a *batch* of constraints (any family),
  flattened to their disjunct bodies, with column-major stacked numpy
  arrays (:meth:`ConstraintMatrix.stacked`) for the vectorized
  interval screen;
* :class:`RelationMatrix` / :func:`matrix_for` — per-relation packing
  of a whole CST column, built once per relation
  :attr:`~repro.sqlc.relation.ConstraintRelation.version` and cached
  weakly, so repeated filters over the same relation never re-pack.

Packing is *conservative*: any atom whose coefficients do not convert
to finite floats (overflowing numerators, for instance) marks the body
unsupported (``None``), and the kernel routes the system to the exact
solver.  Disequalities are excluded from the float rows (they carve
measure-zero sets the LP cannot see) but kept in the exact atom tuple,
so an accepted sample point is still verified against them.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence
from weakref import WeakKeyDictionary

from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.terms import Variable
from repro.runtime import numeric

#: Row kinds in a packed system.
ROW_LE = 0   # a . x <= b   (strict atoms are packed weakened; the
#              exact verification restores strictness)
ROW_EQ = 1   # a . x  = b

#: A packed *unit*: the packed bodies of one constraint (one entry per
#: disjunct; ``None`` entries are unsupported bodies), or ``None`` when
#: the whole constraint cannot be packed.
Unit = "list[PackedSystem | None] | None"


class PackedSystem:
    """One conjunctive body as float64 rows over local variables.

    ``rows[i][j]`` is the coefficient of ``variables[j]`` in row ``i``;
    ``kinds[i]`` is :data:`ROW_LE` or :data:`ROW_EQ`; ``scales[i]`` is
    the row's normalization ``max(1, sum |a_ij|, |b_i|)`` used by the
    kernel's elastic margins.  ``atoms`` is the body's exact atom tuple
    (every atom, including strict and disequality forms) — the ground
    truth accepts are verified against.
    """

    __slots__ = ("variables", "rows", "rhs", "kinds", "scales",
                 "has_equality", "has_strict", "has_disequality",
                 "atoms")

    def __init__(self, variables: tuple[Variable, ...],
                 rows: list[list[float]], rhs: list[float],
                 kinds: list[int], scales: list[float],
                 has_equality: bool, has_strict: bool,
                 has_disequality: bool,
                 atoms: tuple[LinearConstraint, ...]):
        self.variables = variables
        self.rows = rows
        self.rhs = rhs
        self.kinds = kinds
        self.scales = scales
        self.has_equality = has_equality
        self.has_strict = has_strict
        self.has_disequality = has_disequality
        self.atoms = atoms

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def n_vars(self) -> int:
        return len(self.variables)


def _finite(value: Fraction) -> float | None:
    """``float(value)`` when finite and representable, else ``None``."""
    try:
        f = float(value)
    except (OverflowError, ValueError):
        return None
    if f != f or f in (float("inf"), float("-inf")):
        return None
    return f


def pack_conjunction(conj: ConjunctiveConstraint
                     ) -> "PackedSystem | None":
    """Pack one conjunctive body; ``None`` when any coefficient does
    not convert to a finite float (the body then stays exact-only)."""
    variables = sorted(conj.variables, key=lambda v: v.name)
    index = {v: j for j, v in enumerate(variables)}
    width = len(variables)
    rows: list[list[float]] = []
    rhs: list[float] = []
    kinds: list[int] = []
    scales: list[float] = []
    has_eq = has_strict = has_ne = False
    for atom in conj.atoms:
        if atom.is_trivial:
            if not atom.trivial_truth():
                return None     # syntactically false: exact path
            continue
        if atom.relop is Relop.NE:
            has_ne = True
            continue            # measure-zero; verified exactly
        row = [0.0] * width
        norm = 0.0
        for var, coeff in atom.expression.coefficients.items():
            f = _finite(coeff)
            if f is None:
                return None
            row[index[var]] = f
            norm += abs(f)
        bound = _finite(atom.bound)
        if bound is None:
            return None
        if atom.relop is Relop.EQ:
            has_eq = True
            kinds.append(ROW_EQ)
        else:
            if atom.relop is Relop.LT:
                has_strict = True
            kinds.append(ROW_LE)
        rows.append(row)
        rhs.append(bound)
        scales.append(max(1.0, norm, abs(bound)))
    return PackedSystem(tuple(variables), rows, rhs, kinds, scales,
                        has_eq, has_strict, has_ne, conj.atoms)


def bodies_of(constraint: object
              ) -> list[ConjunctiveConstraint] | None:
    """The conjunctive disjunct bodies of any constraint-family member
    (satisfiability-preserving: existential quantification is
    transparent to emptiness), or ``None`` for non-constraints."""
    from repro.constraints.disjunctive import DisjunctiveConstraint
    from repro.constraints.existential import (
        DisjunctiveExistentialConstraint,
        ExistentialConjunctiveConstraint,
    )
    if isinstance(constraint, LinearConstraint):
        return [ConjunctiveConstraint.of(constraint)]
    if isinstance(constraint, ConjunctiveConstraint):
        return [constraint]
    if isinstance(constraint, ExistentialConjunctiveConstraint):
        return [constraint.body]
    if isinstance(constraint, DisjunctiveConstraint):
        return list(constraint.disjuncts)
    if isinstance(constraint, DisjunctiveExistentialConstraint):
        return [d.body if isinstance(d, ExistentialConjunctiveConstraint)
                else d for d in constraint.disjuncts]
    return None


def pack_constraint(constraint: object) -> "Unit":
    """The packed unit of one constraint: one
    :class:`PackedSystem | None` per disjunct body, or ``None`` when
    the value is not a constraint at all."""
    bodies = bodies_of(constraint)
    if bodies is None:
        return None
    unit: list[PackedSystem | None] = []
    for body in bodies:
        if body.is_syntactically_false():
            continue            # a false disjunct contributes nothing
        unit.append(pack_conjunction(body))
    return unit


class ConstraintMatrix:
    """A batch of constraints packed for one kernel call.

    ``units[i]`` is the packed unit of ``constraints[i]`` (see
    :func:`pack_constraint`).  :meth:`stacked` exposes the flattened
    bodies as column-major float64 arrays for the vectorized interval
    screen; systems keep their *local* variable order, so the stacked
    width is the widest single system, not the union of the batch.
    """

    __slots__ = ("units", "_stacked")

    def __init__(self, units: list):
        self.units = units
        self._stacked: object = _UNSET

    @classmethod
    def from_constraints(cls, constraints: Iterable[object]
                         ) -> "ConstraintMatrix":
        return cls([pack_constraint(c) if c is not None else None
                    for c in constraints])

    @classmethod
    def from_units(cls, units: list) -> "ConstraintMatrix":
        return cls(list(units))

    def systems(self) -> "list[PackedSystem]":
        """Every supported packed body in the batch, flattened."""
        out: list[PackedSystem] = []
        for unit in self.units:
            if unit:
                out.extend(ps for ps in unit if ps is not None)
        return out

    def stacked(self) -> "dict | None":
        """Column-major stacked arrays of every supported body, or
        ``None`` without numpy / without rows.

        Returns ``coeffs`` (total_rows x width, Fortran order), ``rhs``,
        ``scales``, ``kinds``, ``row_sys`` (row -> flattened system
        ordinal) and ``offsets`` (system ordinal -> first row), aligned
        with :meth:`systems`.
        """
        if self._stacked is not _UNSET:
            return self._stacked  # type: ignore[return-value]
        np = numeric.get_numpy()
        systems = self.systems()
        total = sum(ps.n_rows for ps in systems)
        if np is None or total == 0:
            self._stacked = None
            return None
        width = max((ps.n_vars for ps in systems), default=0)
        coeffs = np.zeros((total, width), dtype=np.float64, order="F")
        rhs = np.empty(total, dtype=np.float64)
        scales = np.empty(total, dtype=np.float64)
        kinds = np.empty(total, dtype=np.int8)
        row_sys = np.empty(total, dtype=np.intp)
        offsets = np.empty(len(systems) + 1, dtype=np.intp)
        at = 0
        for s, ps in enumerate(systems):
            offsets[s] = at
            for i in range(ps.n_rows):
                coeffs[at, :ps.n_vars] = ps.rows[i]
                rhs[at] = ps.rhs[i]
                scales[at] = ps.scales[i]
                kinds[at] = ps.kinds[i]
                row_sys[at] = s
                at += 1
        offsets[len(systems)] = at
        self._stacked = {
            "coeffs": coeffs, "rhs": rhs, "scales": scales,
            "kinds": kinds, "row_sys": row_sys, "offsets": offsets,
            "systems": systems,
        }
        return self._stacked


_UNSET = object()


# ---------------------------------------------------------------------------
# Per-relation packing (once per relation version)
# ---------------------------------------------------------------------------


class RelationMatrix:
    """The packed units of one relation's CST column.

    Built eagerly over every row once, then looked up by cell identity
    — cells flow through plan operators unchanged, so ``id(cell)``
    survives selects, projections, and join row assembly.
    """

    __slots__ = ("column", "version", "n_rows", "_by_cell")

    def __init__(self, relation, column: str):
        self.column = column
        self.version = relation.version
        self.n_rows = 0
        self._by_cell: dict[int, object] = {}
        self._pack_rows(relation)

    def _pack_rows(self, relation) -> None:
        """Pack the cells of rows ``self.n_rows ..`` (all rows on first
        build, only the appended suffix on :meth:`extend`)."""
        from repro.model.oid import CstOid
        cell_index = relation.column_index(self.column)
        for row in list(relation)[self.n_rows:]:
            cell = row[cell_index]
            if id(cell) in self._by_cell:
                continue
            if isinstance(cell, CstOid):
                self._by_cell[id(cell)] = \
                    pack_constraint(cell.cst.constraint)
            else:
                self._by_cell[id(cell)] = None
        self.n_rows = len(relation)
        self.version = relation.version

    def extend(self, relation) -> None:
        """Bring the matrix current by packing only appended rows.

        In-place extension is safe here (unlike the box indexes):
        the cell map is additive and keyed by cell identity, so a
        reader holding this matrix mid-scan sees exactly the units it
        saw before plus new ones it never asks for.
        """
        self._pack_rows(relation)

    def unit_for(self, cell: object) -> "Unit":
        """The packed unit of ``cell``, or ``None`` when the cell is
        unknown to this relation (or not a CST)."""
        return self._by_cell.get(id(cell))

    def has_cell(self, cell: object) -> bool:
        """Was ``cell`` packed by this matrix?  Distinguishes "not this
        relation's cell" from "packed to None (non-CST)" — sharded
        relations scan their shard matrices with this before trusting
        :meth:`unit_for`."""
        return id(cell) in self._by_cell


_relation_cache: WeakKeyDictionary = WeakKeyDictionary()


def matrix_for(relation, column: str) -> RelationMatrix:
    """The (cached) :class:`RelationMatrix` of ``relation[column]``.

    When the relation's mutation version moves by appends alone (the
    version delta equals the row-count delta — ``add_row`` is the only
    version bump), the cached matrix is *extended* with just the new
    rows; any other divergence rebuilds.  CST atoms are thus packed
    exactly once per row, not once per relation version.
    """
    per_relation = _relation_cache.get(relation)
    if per_relation is None:
        per_relation = {}
        _relation_cache[relation] = per_relation
    entry = per_relation.get(column)
    if entry is not None:
        if entry.version == relation.version:
            return entry
        if entry.version < relation.version \
                and relation.version - entry.version \
                == len(relation) - entry.n_rows \
                and len(relation) >= entry.n_rows:
            entry.extend(relation)
            return entry
    built = RelationMatrix(relation, column)
    per_relation[column] = built
    return built


def clear_matrix_cache() -> None:
    _relation_cache.clear()


def cell_constraint(cell: object) -> object | None:
    """The standard single-column conjunction extractor: a CST cell's
    own constraint (``None`` for non-CST cells, which then take the
    exact row-wise path).  Predicates whose test is exactly
    "``cell`` is satisfiable" can pass this as their
    :attr:`~repro.sqlc.algebra.CstPredicate.conjunction`; the batch
    evaluator additionally recognises it and reads pre-packed systems
    from :func:`matrix_for`."""
    from repro.model.oid import CstOid
    if isinstance(cell, CstOid):
        return cell.cst.constraint
    return None


def _sequence_units(cells: Sequence[object],
                    rm: RelationMatrix) -> list:
    """Units for a run of cells through a relation matrix, packing any
    cell the matrix has not seen (filtered/derived rows)."""
    from repro.model.oid import CstOid
    units = []
    for cell in cells:
        unit = rm.unit_for(cell)
        if unit is None and isinstance(cell, CstOid):
            unit = pack_constraint(cell.cst.constraint)
        units.append(unit)
    return units

"""Canonical forms of constraints — the logical oids of CST objects.

Section 3.1 (following [BJM93]) chooses a canonical form computed by
simplification and redundancy removal, with a deliberate cost cut-off:

* detecting redundant *disjuncts* is co-NP-complete [Sri92], so
  disjunctions only get (1) deletion of each inconsistent disjunct and
  (2) deletion of syntactic duplicates;
* quantifier elimination can explode, so only *simplifying* eliminations
  are performed (see
  :meth:`repro.constraints.existential.ExistentialConjunctiveConstraint.simplify`);
* conjunctions "offer the greatest scope": we normalize atoms, collapse
  unsatisfiable conjunctions to FALSE, and remove LP-redundant atoms.

The *canonical key* additionally alpha-renames variables to positional
names, implementing the paper's requirement that CST expressions "are
invariant to variable names" — two constraints with the same canonical
key denote the same CST object and therefore the same logical oid.
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints import implication
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import Variable
from repro.runtime import context as context_mod
from repro.runtime.context import QueryContext


def canonical_conjunctive(conj: ConjunctiveConstraint,
                          remove_redundant: bool = True,
                          ctx: QueryContext | None = None
                          ) -> ConjunctiveConstraint:
    """Canonical form of a conjunction.

    Unsatisfiable conjunctions collapse to the canonical FALSE; with
    ``remove_redundant`` each atom implied by the others is dropped
    (one LP check per atom — polynomially many simplex runs).  The
    result is memoized on the sorted atom tuple: canonical keys are the
    paper's logical oids and are recomputed per join row, so this is
    the single hottest cache entry point.
    """
    if conj.is_true():
        return conj
    resolved = context_mod.resolve(ctx)
    return resolved.memoized(
        ("canon", conj.sorted_atoms(), remove_redundant),
        lambda: _canonical_conjunctive(conj, remove_redundant, resolved))


def _canonical_conjunctive(conj: ConjunctiveConstraint,
                           remove_redundant: bool,
                           ctx: QueryContext
                           ) -> ConjunctiveConstraint:
    if not conj.is_satisfiable(ctx):
        return ConjunctiveConstraint.false()
    if not remove_redundant:
        return conj
    atoms = list(conj.sorted_atoms())
    kept: list = []
    guard = ctx.guard
    # A single backward pass relative to the full remaining context keeps
    # the result order-independent: an atom is dropped iff implied by
    # (kept so far) + (not yet examined).
    for i, atom in enumerate(atoms):
        if guard is not None:
            guard.tick_canonical()
        context = ConjunctiveConstraint(kept + atoms[i + 1:])
        if not implication.atom_redundant_in(atom, context, ctx):
            kept.append(atom)
    return ConjunctiveConstraint(kept)


def canonical_disjunctive(dis: DisjunctiveConstraint,
                          remove_redundant_atoms: bool = True,
                          ctx: QueryContext | None = None
                          ) -> DisjunctiveConstraint:
    """The paper's two always-on disjunction simplifications, plus
    per-disjunct conjunction canonicalization.

    Redundant *disjuncts* (those implied by the union of the others) are
    deliberately **not** removed — co-NP-complete per [Sri92].
    """
    ctx = context_mod.resolve(ctx)
    canonical = []
    guard = ctx.guard
    for d in dis.disjuncts:
        if guard is not None:
            guard.tick_canonical()
        c = canonical_conjunctive(d, remove_redundant=remove_redundant_atoms,
                                  ctx=ctx)
        if not c.is_syntactically_false():
            canonical.append(c)
    # The DisjunctiveConstraint constructor removes syntactic duplicates.
    return DisjunctiveConstraint(canonical)


def remove_subsumed_disjuncts(dis: DisjunctiveConstraint,
                              ctx: QueryContext | None = None
                              ) -> DisjunctiveConstraint:
    """Delete disjuncts implied by the union of the others.

    This is the operation the paper's canonical form deliberately
    *excludes* — "detecting redundant disjuncts is a co-NP-complete
    problem [Sri92]" — provided as an explicit opt-in for callers that
    want minimal representations and can afford the entailment checks
    (exponential in the disjunction size in the worst case).
    """
    ctx = context_mod.resolve(ctx)
    kept = list(dis.disjuncts)
    guard = ctx.guard
    i = 0
    while i < len(kept):
        if guard is not None:
            guard.tick_canonical()
        candidate = kept[i]
        others = kept[:i] + kept[i + 1:]
        if others and implication.conjunctive_entails_disjunction(
                candidate, others, ctx):
            kept.pop(i)
            continue
        i += 1
    return DisjunctiveConstraint(kept)


def canonical_existential(ex: ExistentialConjunctiveConstraint,
                          ctx: QueryContext | None = None
                          ) -> ExistentialConjunctiveConstraint:
    """Simplifying eliminations + canonical body."""
    ctx = context_mod.resolve(ctx)
    simplified = ex.simplify()
    body = canonical_conjunctive(simplified.body, ctx=ctx)
    return ExistentialConjunctiveConstraint(body, simplified.quantified)


def canonical_dex(dex: DisjunctiveExistentialConstraint,
                  ctx: QueryContext | None = None
                  ) -> DisjunctiveExistentialConstraint:
    ctx = context_mod.resolve(ctx)
    return DisjunctiveExistentialConstraint(
        canonical_existential(d, ctx) for d in dex.disjuncts)


def canonicalize(constraint, ctx: QueryContext | None = None):
    """Canonical form of any family member.

    The result is *lowered* to the most specific family that can
    represent it (a quantifier-free existential becomes a plain
    conjunction, a one-disjunct disjunction becomes its disjunct, ...)
    so that equal point sets built through different constructors
    produce the same canonical object and hence the same logical oid.
    """
    ctx = context_mod.resolve(ctx)
    if isinstance(constraint, ConjunctiveConstraint):
        return canonical_conjunctive(constraint, ctx=ctx)
    if isinstance(constraint, DisjunctiveConstraint):
        return lower(canonical_disjunctive(constraint, ctx=ctx))
    if isinstance(constraint, ExistentialConjunctiveConstraint):
        return lower(canonical_existential(constraint, ctx))
    if isinstance(constraint, DisjunctiveExistentialConstraint):
        return lower(canonical_dex(constraint, ctx))
    raise TypeError(f"not a constraint: {constraint!r}")


def lower(constraint):
    """Rewrite a constraint into the most specific family representing
    it syntactically (no satisfiability reasoning beyond what the
    canonical formers already did)."""
    if isinstance(constraint, ExistentialConjunctiveConstraint):
        if constraint.is_quantifier_free():
            return constraint.body
        return constraint
    if isinstance(constraint, DisjunctiveConstraint):
        if len(constraint) == 0:
            return ConjunctiveConstraint.false()
        if len(constraint) == 1:
            return constraint.disjuncts[0]
        return constraint
    if isinstance(constraint, DisjunctiveExistentialConstraint):
        lowered = [lower(d) for d in constraint.disjuncts]
        if not lowered:
            return ConjunctiveConstraint.false()
        if len(lowered) == 1:
            return lowered[0]
        if all(isinstance(d, ConjunctiveConstraint) for d in lowered):
            return DisjunctiveConstraint(lowered)
        return constraint
    return constraint


def canonical_key(constraint, schema: Sequence[Variable],
                  ctx: QueryContext | None = None) -> tuple:
    """Alpha-invariant identity key of a constraint under a variable
    schema (the ordered tuple of its CST dimensions).

    Variables are renamed positionally (schema variable i becomes
    ``_i``), so two CST objects that differ only in variable names get
    equal keys — the invariance Section 4.1 requires of logical oids.
    """
    resolved = context_mod.resolve(ctx)
    try:
        return resolved.memoized(
            ("key", type(constraint).__name__, constraint,
             tuple(v.name for v in schema)),
            lambda: _canonical_key(constraint, schema, resolved))
    except TypeError:
        # Unhashable constraint content — compute without memoizing.
        return _canonical_key(constraint, schema, resolved)


def _canonical_key(constraint, schema: Sequence[Variable],
                   ctx: QueryContext) -> tuple:
    mapping = {var: Variable(f"_{i}") for i, var in enumerate(schema)}
    canon = canonicalize(constraint, ctx)
    renamed = canon.rename(mapping)
    renamed = canonicalize(renamed, ctx)
    if isinstance(renamed, ConjunctiveConstraint):
        return ("conj", renamed.sorted_atoms())
    if isinstance(renamed, DisjunctiveConstraint):
        return ("dis", frozenset(renamed.disjuncts))
    if isinstance(renamed, ExistentialConjunctiveConstraint):
        return ("ex", renamed._canonical_alpha())
    if isinstance(renamed, DisjunctiveExistentialConstraint):
        return ("dex", frozenset(renamed.disjuncts))
    raise TypeError(f"not a constraint: {renamed!r}")

"""CST objects: constraints as first-class objects with logical identity.

Section 3 of the paper: a CST object is a (possibly infinite) collection
of points in n-dimensional space, conceptually represented by a
constraint; its *logical oid* is the canonical form of that constraint,
invariant under renaming of variables.  CST objects are organized into
classes ``CST(n)`` by dimension (see :mod:`repro.model.schema` for the
class side); this module provides the value itself and its polymorphic
operations ("the familiar constraint manipulations such as intersection
and union").
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import DimensionError
from repro.constraints import bounds
from repro.constraints import canonical as canonical_mod
from repro.constraints import families
from repro.constraints.atoms import LinearConstraint
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import RationalLike, Variable, to_fraction

#: Union of the four family classes.
AnyConstraint = (ConjunctiveConstraint | DisjunctiveConstraint
                 | ExistentialConjunctiveConstraint
                 | DisjunctiveExistentialConstraint)

#: Placeholder for a not-yet-computed cheap bounding box (``None`` is a
#: meaningful value: the box is provably empty).
_UNSET = object()


class CSTObject:
    """An n-dimensional constraint object.

    ``schema`` is the ordered tuple of dimension variables — e.g. the
    paper's ``extent : CST(w,z)`` has schema ``(w, z)``.  The free
    variables of ``constraint`` must be a subset of the schema.

    Equality and hashing are *semantic up to canonical form*: two CST
    objects with the same dimension and the same canonical key are the
    same logical oid, regardless of variable names.
    """

    __slots__ = ("_schema", "_constraint", "_key", "_hash", "_sat",
                 "_box")

    def __init__(self, schema: Sequence[Variable],
                 constraint: AnyConstraint | LinearConstraint,
                 canonicalize: bool = True):
        schema = tuple(schema)
        if len({v.name for v in schema}) != len(schema):
            raise DimensionError(
                f"duplicate variables in CST schema {schema}")
        if isinstance(constraint, LinearConstraint):
            constraint = ConjunctiveConstraint.of(constraint)
        free = _free_variables(constraint)
        extra = free - set(schema)
        if extra:
            raise DimensionError(
                f"constraint mentions variables outside the CST schema: "
                f"{sorted(v.name for v in extra)} not in "
                f"{[v.name for v in schema]}")
        if canonicalize:
            constraint = canonical_mod.canonicalize(constraint)
        self._schema = schema
        self._constraint = constraint
        self._key: tuple | None = None
        self._hash: int | None = None
        self._sat: bool | None = None
        self._box: object = _UNSET

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_atoms(cls, schema: Sequence[Variable],
                   atoms: Iterable[LinearConstraint]) -> "CSTObject":
        return cls(schema, ConjunctiveConstraint(atoms))

    @classmethod
    def everything(cls, schema: Sequence[Variable]) -> "CSTObject":
        """All of n-dimensional space."""
        return cls(schema, ConjunctiveConstraint.true())

    @classmethod
    def empty(cls, schema: Sequence[Variable]) -> "CSTObject":
        return cls(schema, ConjunctiveConstraint.false())

    # -- inspection ----------------------------------------------------------------

    @property
    def schema(self) -> tuple[Variable, ...]:
        return self._schema

    @property
    def dimension(self) -> int:
        return len(self._schema)

    @property
    def constraint(self) -> AnyConstraint:
        return self._constraint

    @property
    def family(self) -> families.Family:
        return families.classify(self._constraint)

    @property
    def oid_key(self) -> tuple:
        """The alpha-invariant identity key (the logical oid's content)."""
        if self._key is None:
            self._key = (len(self._schema),
                         canonical_mod.canonical_key(
                             self._constraint, self._schema))
        return self._key

    def oid_text(self) -> str:
        """Printable logical oid: the canonical constraint under its
        schema variable names, in the paper's projection notation."""
        names = ",".join(v.name for v in self._schema)
        return f"(({names}) | {self._constraint})"

    # -- point semantics ---------------------------------------------------------------

    def contains_point(self, *coordinates: RationalLike) -> bool:
        """Is the concrete point a member of the denoted point set?"""
        if len(coordinates) == 1 and isinstance(coordinates[0],
                                                (tuple, list)):
            coordinates = tuple(coordinates[0])
        if len(coordinates) != self.dimension:
            raise DimensionError(
                f"expected {self.dimension} coordinates, "
                f"got {len(coordinates)}")
        point = {v: to_fraction(c)
                 for v, c in zip(self._schema, coordinates)}
        return self._constraint.holds_at(point)

    def is_satisfiable(self) -> bool:
        """Nonempty as a point set (cached — the object is immutable)."""
        if self._sat is None:
            self._sat = self._constraint.is_satisfiable()
        return self._sat

    def sample_point(self) -> tuple[Fraction, ...] | None:
        point = self._constraint.sample_point()
        if point is None:
            return None
        return tuple(point.get(v, Fraction(0)) for v in self._schema)

    def cheap_box(self):
        """Syntactic per-variable bounds (no LP; see
        :func:`repro.constraints.bounds.constraint_box`), cached — the
        object is immutable.  ``None`` means provably empty."""
        if self._box is _UNSET:
            self._box = bounds.constraint_box(self._constraint)
        return self._box

    # -- polymorphic operations (the CST superclass methods) ------------------------------

    def rename(self, new_schema: Sequence[Variable]) -> "CSTObject":
        """Positional renaming onto a new variable schema — the query
        syntax ``O(x1..xn)`` of Section 4.2."""
        new_schema = tuple(new_schema)
        if len(new_schema) != self.dimension:
            raise DimensionError(
                f"renaming schema has {len(new_schema)} variables, "
                f"object has dimension {self.dimension}")
        mapping = dict(zip(self._schema, new_schema))
        return CSTObject(new_schema, self._constraint.rename(mapping),
                         canonicalize=False)

    def intersect(self, other: "CSTObject") -> "CSTObject":
        """Constraint conjunction; schemas merge by variable name (the
        shared-name join semantics of Section 3.2).

        Fast path: when the two cheap bounding boxes are disjoint the
        intersection is provably empty, so the canonical FALSE object
        is returned without conjoining or canonicalizing.  Restricted
        to the unquantified families, whose canonical form of an empty
        set is exactly the FALSE conjunction — the shortcut is then
        observationally identical to the slow path.
        """
        schema = _merge_schemas(self._schema, other._schema)
        from repro.runtime import cache
        if cache.prefilter_active() \
                and isinstance(self._constraint,
                               (ConjunctiveConstraint,
                                DisjunctiveConstraint)) \
                and isinstance(other._constraint,
                               (ConjunctiveConstraint,
                                DisjunctiveConstraint)) \
                and bounds.boxes_disjoint(self.cheap_box(),
                                          other.cheap_box()):
            return CSTObject(schema, ConjunctiveConstraint.false(),
                             canonicalize=False)
        combined = _conjoin_any(self._constraint, other._constraint)
        return CSTObject(schema, combined)

    __and__ = intersect

    def union(self, other: "CSTObject") -> "CSTObject":
        schema = _merge_schemas(self._schema, other._schema)
        combined = _disjoin_any(self._constraint, other._constraint)
        return CSTObject(schema, combined)

    __or__ = union

    def conjoin_atoms(self, atoms: Iterable[LinearConstraint]
                      ) -> "CSTObject":
        extra = ConjunctiveConstraint(atoms)
        schema = _merge_schemas(
            self._schema,
            tuple(sorted(extra.variables, key=lambda v: v.name)))
        return CSTObject(schema, _conjoin_any(self._constraint, extra))

    def project(self, schema: Sequence[Variable]) -> "CSTObject":
        """``((schema) | self)`` — projection onto (possibly new)
        variables; family rules are applied by the constraint layer."""
        schema = tuple(schema)
        body = self._constraint
        if isinstance(body, ConjunctiveConstraint):
            body = ExistentialConjunctiveConstraint.of_conjunctive(body)
        result = body.project(schema)
        return CSTObject(schema, result)

    def entails(self, other: "CSTObject") -> bool:
        """The paper's ``|=`` between CST objects: containment of point
        sets (with variables matched by name)."""
        lhs = DisjunctiveExistentialConstraint.of(self._constraint)
        rhs = DisjunctiveExistentialConstraint.of(other._constraint)
        return lhs.entails(rhs)

    def overlaps(self, other: "CSTObject") -> bool:
        """Nonempty intersection (the view example's overlap predicate)."""
        return self.intersect(other).is_satisfiable()

    def bounding_box(self) -> list[tuple[Fraction | None, Fraction | None]]:
        """Exact per-dimension (min, max); None marks unboundedness."""
        from repro.constraints import lp
        box = []
        flat = self._flat_disjuncts()
        for var in self._schema:
            lows, highs = [], []
            for conj in flat:
                lo = lp.minimize(var, conj)
                hi = lp.maximize(var, conj)
                if lo.is_infeasible:
                    continue
                lows.append(lo.value if lo.is_optimal else None)
                highs.append(hi.value if hi.is_optimal else None)
            if not lows:
                box.append((None, None))
                continue
            box.append((
                None if any(v is None for v in lows) else min(lows),
                None if any(v is None for v in highs) else max(highs)))
        return box

    def _flat_disjuncts(self) -> list[ConjunctiveConstraint]:
        """The object as a list of conjunctions (quantified witnesses
        kept in-body, which is sound for per-free-variable bounds)."""
        c = self._constraint
        if isinstance(c, ConjunctiveConstraint):
            return [c]
        if isinstance(c, DisjunctiveConstraint):
            return list(c.disjuncts)
        if isinstance(c, ExistentialConjunctiveConstraint):
            return [c.body]
        return [d.body for d in c.disjuncts]

    # -- identity ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSTObject):
            return NotImplemented
        return self.oid_key == other.oid_key

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, CSTObject):
            return NotImplemented
        return self.oid_key != other.oid_key

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("CSTObject", self.oid_key))
        return self._hash

    def __repr__(self) -> str:
        return f"CSTObject{self.oid_text()}"

    def __str__(self) -> str:
        return self.oid_text()


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _free_variables(constraint) -> set[Variable]:
    return set(constraint.variables)


def _merge_schemas(a: tuple[Variable, ...], b: tuple[Variable, ...]
                   ) -> tuple[Variable, ...]:
    seen = set(a)
    return a + tuple(v for v in b if v not in seen)


def _conjoin_any(a, b):
    """Conjunction across families, producing the least family member."""
    fam = families.join(families.classify(a), families.classify(b))
    if fam is families.Family.CONJUNCTIVE:
        return _to_conjunctive(a).conjoin(_to_conjunctive(b))
    if fam is families.Family.EXISTENTIAL_CONJUNCTIVE:
        return _to_existential(a).conjoin(_to_existential(b))
    if fam is families.Family.DISJUNCTIVE:
        return _to_disjunctive(a).conjoin(_to_disjunctive(b))
    return DisjunctiveExistentialConstraint.of(a).conjoin(
        DisjunctiveExistentialConstraint.of(b))


def _disjoin_any(a, b):
    fam = families.join(families.classify(a), families.classify(b))
    if fam in (families.Family.CONJUNCTIVE, families.Family.DISJUNCTIVE):
        return _to_disjunctive(a).disjoin(_to_disjunctive(b))
    return DisjunctiveExistentialConstraint.of(a).disjoin(
        DisjunctiveExistentialConstraint.of(b))


def _to_conjunctive(c) -> ConjunctiveConstraint:
    if isinstance(c, ConjunctiveConstraint):
        return c
    if isinstance(c, ExistentialConjunctiveConstraint) \
            and c.is_quantifier_free():
        return c.body
    if isinstance(c, DisjunctiveConstraint) and len(c) == 1:
        return c.disjuncts[0]
    if isinstance(c, DisjunctiveConstraint) and len(c) == 0:
        return ConjunctiveConstraint.false()
    if isinstance(c, DisjunctiveExistentialConstraint):
        if len(c) == 0:
            return ConjunctiveConstraint.false()
        if len(c) == 1 and c.disjuncts[0].is_quantifier_free():
            return c.disjuncts[0].body
    raise TypeError(f"not conjunctive: {c!r}")


def _to_existential(c) -> ExistentialConjunctiveConstraint:
    if isinstance(c, ExistentialConjunctiveConstraint):
        return c
    if isinstance(c, DisjunctiveExistentialConstraint) and len(c) == 1:
        return c.disjuncts[0]
    return ExistentialConjunctiveConstraint.of_conjunctive(
        _to_conjunctive(c))


def _to_disjunctive(c) -> DisjunctiveConstraint:
    if isinstance(c, DisjunctiveConstraint):
        return c
    if isinstance(c, ConjunctiveConstraint):
        return DisjunctiveConstraint.of_conjunctive(c)
    if isinstance(c, ExistentialConjunctiveConstraint) \
            and c.is_quantifier_free():
        return DisjunctiveConstraint.of_conjunctive(c.body)
    if isinstance(c, DisjunctiveExistentialConstraint) \
            and all(d.is_quantifier_free() for d in c.disjuncts):
        return DisjunctiveConstraint(d.body for d in c.disjuncts)
    raise TypeError(f"not disjunctive: {c!r}")

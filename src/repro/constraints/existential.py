"""Existential conjunctive and disjunctive existential constraints.

Section 3.1: an *existential conjunctive* constraint is a conjunction of
linear atoms under unrestricted existential quantification (projection),
kept **symbolic** — the paper explicitly refuses to eliminate all
quantifiers eagerly because the result can grow exponentially; only
"simplifying" eliminations (as in CLP(R)) are performed.  A *disjunctive
existential* constraint is a disjunction of existential conjunctive
constraints, closed under ``or`` and under projection that does not
quantify any currently-free variable.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from repro.errors import ConstraintFamilyError
from repro.constraints import projection as projection_mod
from repro.constraints.atoms import LinearConstraint
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.terms import RationalLike, Variable
from repro.runtime.guard import current_guard

#: Threshold for the "simplifying quantifier elimination" heuristic: a
#: quantified variable is eliminated eagerly when its Fourier-Motzkin
#: step does not grow the atom count (equalities always qualify).
_SIMPLIFY_GROWTH_LIMIT = 0


class ExistentialConjunctiveConstraint:
    """``exists q1..qk . body`` with a symbolic quantifier prefix.

    Immutable.  Free variables are the body's variables minus the
    quantified set; quantified variables not occurring in the body are
    dropped.
    """

    __slots__ = ("_body", "_quantified", "_hash")

    def __init__(self, body: ConjunctiveConstraint,
                 quantified: Iterable[Variable] = ()):
        if isinstance(body, LinearConstraint):
            body = ConjunctiveConstraint.of(body)
        if not isinstance(body, ConjunctiveConstraint):
            raise TypeError(f"expected ConjunctiveConstraint, got {body!r}")
        self._body = body
        self._quantified = frozenset(quantified) & body.variables
        self._hash: int | None = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def of_conjunctive(cls, conj: ConjunctiveConstraint
                       ) -> "ExistentialConjunctiveConstraint":
        return cls(conj, ())

    @classmethod
    def true(cls) -> "ExistentialConjunctiveConstraint":
        return cls(ConjunctiveConstraint.true())

    @classmethod
    def false(cls) -> "ExistentialConjunctiveConstraint":
        return cls(ConjunctiveConstraint.false())

    # -- inspection ------------------------------------------------------------

    @property
    def body(self) -> ConjunctiveConstraint:
        return self._body

    @property
    def quantified(self) -> frozenset[Variable]:
        return self._quantified

    @property
    def free_variables(self) -> frozenset[Variable]:
        return self._body.variables - self._quantified

    # ``variables`` means *free* variables for every constraint class —
    # quantified ones are internal.
    variables = free_variables

    def is_quantifier_free(self) -> bool:
        return not self._quantified

    def is_syntactically_false(self) -> bool:
        return self._body.is_syntactically_false()

    def is_true(self) -> bool:
        return self._body.is_true()

    # -- alpha renaming of the prefix ----------------------------------------------

    def freshen(self, taken: frozenset[Variable]
                ) -> "ExistentialConjunctiveConstraint":
        """Rename quantified variables apart from ``taken`` (capture
        avoidance before conjoining two formulas)."""
        clashes = self._quantified & taken
        if not clashes:
            return self
        forbidden = set(taken) | self._body.variables
        mapping: dict[Variable, Variable] = {}
        for var in sorted(clashes, key=lambda v: v.name):
            fresh = _fresh_variable(var.name, forbidden)
            forbidden.add(fresh)
            mapping[var] = fresh
        body = self._body.rename(mapping)
        quantified = {mapping.get(v, v) for v in self._quantified}
        return ExistentialConjunctiveConstraint(body, quantified)

    # -- logical operations ------------------------------------------------------------

    def conjoin(self, other) -> "ExistentialConjunctiveConstraint":
        """Conjunction with capture-avoiding renaming of both prefixes."""
        if isinstance(other, (LinearConstraint, ConjunctiveConstraint)):
            other = ExistentialConjunctiveConstraint.of_conjunctive(
                other if isinstance(other, ConjunctiveConstraint)
                else ConjunctiveConstraint.of(other))
        if not isinstance(other, ExistentialConjunctiveConstraint):
            raise TypeError(
                f"cannot conjoin existential conjunctive with {other!r}")
        left = self.freshen(other.free_variables | other.quantified)
        right = other.freshen(left.free_variables | left.quantified)
        return ExistentialConjunctiveConstraint(
            left._body.conjoin(right._body),
            left._quantified | right._quantified)

    __and__ = conjoin

    def project(self, free: Iterable[Variable]
                ) -> "ExistentialConjunctiveConstraint":
        """``((free) | self)`` — unrestricted, quantifiers stay symbolic.

        Newly-quantified variables join the prefix; a simplifying
        elimination pass then removes the cheap ones.
        """
        free_set = frozenset(free)
        quantified = self._quantified | (self.free_variables - free_set)
        return ExistentialConjunctiveConstraint(
            self._body, quantified).simplify()

    def rename(self, mapping: Mapping[Variable, Variable]
               ) -> "ExistentialConjunctiveConstraint":
        """Rename *free* variables (the prefix is alpha-renamed out of the
        way first when a target name collides with it)."""
        relevant = {src: dst for src, dst in mapping.items()
                    if src in self.free_variables}
        safe = self.freshen(frozenset(relevant.values()))
        return ExistentialConjunctiveConstraint(
            safe._body.rename(relevant), safe._quantified)

    def substitute(self, bindings) -> "ExistentialConjunctiveConstraint":
        relevant = {v: e for v, e in bindings.items()
                    if v in self.free_variables}
        if not relevant:
            return self
        taken: set[Variable] = set()
        from repro.constraints.terms import LinearExpression
        for expr in relevant.values():
            taken.update(LinearExpression.coerce(expr).variables)
        safe = self.freshen(frozenset(taken))
        return ExistentialConjunctiveConstraint(
            safe._body.substitute(relevant), safe._quantified)

    # -- elimination ------------------------------------------------------------

    def simplify(self) -> "ExistentialConjunctiveConstraint":
        """Perform the paper's *simplifying* quantifier eliminations.

        A quantified variable is eliminated when the elimination is an
        equality substitution or a Fourier-Motzkin step that does not
        increase the number of atoms; remaining quantifiers stay
        symbolic (CLP(R)-style output simplification).
        """
        body = self._body
        quantified = set(self._quantified)
        guard = current_guard()
        changed = True
        while changed and quantified:
            changed = False
            for var in sorted(quantified, key=lambda v: v.name):
                if guard is not None:
                    guard.tick_canonical(fragment="existential-simplify")
                if var not in body.variables:
                    quantified.discard(var)
                    changed = True
                    continue
                if any(var in a.variables for a in body.disequalities()):
                    continue
                if _has_equality_on(body, var):
                    body = projection_mod.eliminate_variable(body, var)
                    quantified.discard(var)
                    changed = True
                    continue
                lows, highs = _bound_counts(body, var)
                growth = lows * highs - lows - highs
                if growth <= _SIMPLIFY_GROWTH_LIMIT:
                    body = projection_mod.prune_syntactic(
                        projection_mod.eliminate_variable(body, var))
                    quantified.discard(var)
                    changed = True
        return ExistentialConjunctiveConstraint(body, quantified)

    def eliminate_all(self) -> ConjunctiveConstraint:
        """Full quantifier elimination to a plain conjunction.

        Worst-case exponential (the cost the paper's design avoids
        paying by default; see experiment E9).  Disequalities on
        quantified variables are not expressible as a conjunction and
        raise :class:`ConstraintFamilyError`.
        """
        return projection_mod.project_conjunctive(
            self._body, self.free_variables)

    def to_disjunctive(self) -> DisjunctiveConstraint:
        """Eliminate all quantifiers, splitting disequalities as needed."""
        return DisjunctiveConstraint.of_conjunctive(self._body).project(
            self.free_variables)

    # -- satisfiability ------------------------------------------------------------

    def is_satisfiable(self) -> bool:
        return self._body.is_satisfiable()

    def sample_point(self) -> Mapping[Variable, Fraction] | None:
        """A sample of the *free* variables (witnesses are projected out)."""
        point = self._body.sample_point()
        if point is None:
            return None
        return {v: c for v, c in point.items() if v in self.free_variables}

    def holds_at(self, point: Mapping[Variable, RationalLike]) -> bool:
        """Truth at a point binding the free variables: satisfiability of
        the body with the free variables pinned."""
        free = self.free_variables
        missing = [v for v in free if v not in point]
        if missing:
            raise KeyError(
                f"point does not bind {sorted(v.name for v in missing)}")
        pinned = self._body.substitute(
            {v: point[v] for v in free})
        return pinned.is_satisfiable()

    def entails(self, other: "ExistentialConjunctiveConstraint") -> bool:
        """``self |= other`` (sound and complete).

        The left prefix is universal-strengthened away (``exists x phi |=
        psi`` iff ``phi |= psi`` when ``x`` not free in ``psi`` — ensured
        by freshening); the right side must be quantifier-eliminated.
        """
        left = self.freshen(other.free_variables | other.quantified)
        right_dis = other.to_disjunctive()
        from repro.constraints import implication
        return implication.conjunctive_entails_disjunction(
            left._body, list(right_dis.disjuncts))

    # -- identity ------------------------------------------------------------------

    def _canonical_alpha(self) -> tuple:
        """Hash/eq key invariant under renaming of the quantifier prefix."""
        mapping: dict[Variable, Variable] = {}
        for i, var in enumerate(sorted(self._quantified,
                                       key=lambda v: v.name)):
            mapping[var] = Variable(f"__q{i}__")
        body = self._body.rename(mapping) if mapping else self._body
        return (body.sorted_atoms(),
                frozenset(mapping.values()) if mapping else frozenset())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExistentialConjunctiveConstraint):
            return NotImplemented
        return self._canonical_alpha() == other._canonical_alpha()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("ExistentialConjunctiveConstraint",)
                              + self._canonical_alpha())
        return self._hash

    def __repr__(self) -> str:
        return f"ExistentialConjunctiveConstraint({self})"

    def __str__(self) -> str:
        if not self._quantified:
            return str(self._body)
        names = ",".join(sorted(v.name for v in self._quantified))
        return f"exists {names} . ({self._body})"


class DisjunctiveExistentialConstraint:
    """A disjunction of existential conjunctive constraints.

    The most general of the paper's four families: includes all the
    others.  Closed under ``or`` and under projection that keeps every
    free variable free (projection may only *add* free variables — the
    condition that "avoids having existential quantification on a
    disjunctive existential constraint").
    """

    __slots__ = ("_disjuncts", "_hash")

    def __init__(self,
                 disjuncts: Iterable[ExistentialConjunctiveConstraint] = ()):
        cleaned: list[ExistentialConjunctiveConstraint] = []
        seen: set[ExistentialConjunctiveConstraint] = set()
        for d in disjuncts:
            d = _as_existential(d)
            if d.is_syntactically_false():
                continue
            if d.is_true():
                cleaned = [ExistentialConjunctiveConstraint.true()]
                seen = {cleaned[0]}
                break
            if d not in seen:
                seen.add(d)
                cleaned.append(d)
        self._disjuncts = tuple(cleaned)
        self._hash: int | None = None
        guard = current_guard()
        if guard is not None:
            guard.note_disjuncts(len(self._disjuncts),
                                 fragment="disjunctive-existential")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def false(cls) -> "DisjunctiveExistentialConstraint":
        return cls(())

    @classmethod
    def true(cls) -> "DisjunctiveExistentialConstraint":
        return cls((ExistentialConjunctiveConstraint.true(),))

    @classmethod
    def of(cls, value) -> "DisjunctiveExistentialConstraint":
        """Lift any family member into disjunctive existential form."""
        if isinstance(value, DisjunctiveExistentialConstraint):
            return value
        if isinstance(value, DisjunctiveConstraint):
            return cls(ExistentialConjunctiveConstraint.of_conjunctive(d)
                       for d in value.disjuncts)
        return cls((_as_existential(value),))

    # -- inspection --------------------------------------------------------------

    @property
    def disjuncts(self) -> tuple[ExistentialConjunctiveConstraint, ...]:
        return self._disjuncts

    @property
    def free_variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for d in self._disjuncts:
            result.update(d.free_variables)
        return frozenset(result)

    variables = free_variables

    def is_syntactically_false(self) -> bool:
        return not self._disjuncts

    def is_true(self) -> bool:
        return any(d.is_true() for d in self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self) -> Iterator[ExistentialConjunctiveConstraint]:
        return iter(self._disjuncts)

    # -- logical operations ----------------------------------------------------------

    def disjoin(self, other) -> "DisjunctiveExistentialConstraint":
        other = DisjunctiveExistentialConstraint.of(other)
        return DisjunctiveExistentialConstraint(
            self._disjuncts + other._disjuncts)

    __or__ = disjoin

    def conjoin(self, other) -> "DisjunctiveExistentialConstraint":
        """Distributed conjunction.

        Not one of the paper's closure operations for this family, but
        semantically exact and needed by the query evaluator when
        composing CST formulas; family-discipline checking happens in
        :mod:`repro.constraints.families`.
        """
        other = DisjunctiveExistentialConstraint.of(other)
        return DisjunctiveExistentialConstraint(
            a.conjoin(b)
            for a, b in itertools.product(self._disjuncts, other._disjuncts))

    __and__ = conjoin

    def project(self, free: Iterable[Variable], *,
                allow_quantification: bool = True
                ) -> "DisjunctiveExistentialConstraint":
        """``((free) | self)``.

        With ``allow_quantification=False`` this is the paper's DEX
        projection: every currently-free variable must appear in
        ``free`` (the projection only adds variables), otherwise
        :class:`ConstraintFamilyError`.  With the default the operation
        quantifies disjunct-wise (still exact: projection distributes
        over union).
        """
        free_set = frozenset(free)
        hidden = self.free_variables - free_set
        if hidden and not allow_quantification:
            raise ConstraintFamilyError(
                "projection of a disjunctive existential constraint must "
                f"keep all free variables; would hide "
                f"{sorted(v.name for v in hidden)}")
        return DisjunctiveExistentialConstraint(
            d.project(free_set & d.free_variables) for d in self._disjuncts)

    def rename(self, mapping: Mapping[Variable, Variable]
               ) -> "DisjunctiveExistentialConstraint":
        return DisjunctiveExistentialConstraint(
            d.rename(mapping) for d in self._disjuncts)

    def substitute(self, bindings) -> "DisjunctiveExistentialConstraint":
        return DisjunctiveExistentialConstraint(
            d.substitute(bindings) for d in self._disjuncts)

    # -- satisfiability / entailment ------------------------------------------------

    def is_satisfiable(self) -> bool:
        return any(d.is_satisfiable() for d in self._disjuncts)

    def sample_point(self) -> Mapping[Variable, Fraction] | None:
        for d in self._disjuncts:
            point = d.sample_point()
            if point is not None:
                return {v: point.get(v, Fraction(0))
                        for v in self.free_variables}
        return None

    def holds_at(self, point: Mapping[Variable, RationalLike]) -> bool:
        return any(_holds_partial(d, point) for d in self._disjuncts)

    def entails(self, other) -> bool:
        """``self |= other`` — every disjunct must entail the right side."""
        other = DisjunctiveExistentialConstraint.of(other)
        rhs: list[ConjunctiveConstraint] = []
        for d in other._disjuncts:
            rhs.extend(d.to_disjunctive().disjuncts)
        from repro.constraints import implication
        for d in self._disjuncts:
            left = d.freshen(_all_vars(other))
            if not implication.conjunctive_entails_disjunction(
                    left.body, rhs):
                return False
        return True

    def to_disjunctive(self) -> DisjunctiveConstraint:
        """Full elimination into the (quantifier-free) disjunctive family."""
        result = DisjunctiveConstraint.false()
        for d in self._disjuncts:
            result = result.disjoin(d.to_disjunctive())
        return result

    # -- identity --------------------------------------------------------------------

    def sorted_disjuncts(self) -> tuple:
        return tuple(sorted(self._disjuncts, key=str))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DisjunctiveExistentialConstraint):
            return NotImplemented
        return (frozenset(self._disjuncts) == frozenset(other._disjuncts))

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(("DisjunctiveExistentialConstraint",
                               frozenset(self._disjuncts)))
        return self._hash

    def __repr__(self) -> str:
        return f"DisjunctiveExistentialConstraint({self})"

    def __str__(self) -> str:
        if not self._disjuncts:
            return "FALSE"
        return " or ".join(f"({d})" for d in self._disjuncts)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _as_existential(value) -> ExistentialConjunctiveConstraint:
    if isinstance(value, ExistentialConjunctiveConstraint):
        return value
    if isinstance(value, ConjunctiveConstraint):
        return ExistentialConjunctiveConstraint.of_conjunctive(value)
    if isinstance(value, LinearConstraint):
        return ExistentialConjunctiveConstraint.of_conjunctive(
            ConjunctiveConstraint.of(value))
    raise TypeError(
        f"cannot treat {value!r} as an existential conjunctive constraint")


def _fresh_variable(base: str, forbidden: set[Variable]) -> Variable:
    for i in itertools.count(1):
        candidate = Variable(f"{base}~{i}")
        if candidate not in forbidden:
            return candidate
    raise AssertionError("unreachable")


def _has_equality_on(body: ConjunctiveConstraint, var: Variable) -> bool:
    return any(var in a.variables for a in body.equalities())


def _bound_counts(body: ConjunctiveConstraint, var: Variable
                  ) -> tuple[int, int]:
    lows = highs = 0
    for atom in body.atoms:
        coeff = atom.expression.coefficient(var)
        if coeff > 0:
            highs += 1
        elif coeff < 0:
            lows += 1
    return lows, highs


def _holds_partial(d: ExistentialConjunctiveConstraint,
                   point: Mapping[Variable, RationalLike]) -> bool:
    """Truth of one disjunct at a point binding (at least) its free
    variables; extra bindings for other disjuncts' variables are fine."""
    restricted = {v: point[v] for v in d.free_variables if v in point}
    missing = d.free_variables - restricted.keys()
    if missing:
        raise KeyError(
            f"point does not bind {sorted(v.name for v in missing)}")
    return d.body.substitute(restricted).is_satisfiable()


def _all_vars(dex: DisjunctiveExistentialConstraint) -> frozenset[Variable]:
    result: set[Variable] = set()
    for d in dex.disjuncts:
        result |= d.free_variables | d.quantified
    return frozenset(result)

"""Textual syntax for constraints and CST objects.

The concrete syntax follows the paper's projection notation::

    ((x,y) | -4 <= x <= 4 and -2 <= y <= 2)
    ((u,v) | exists w,z . u = 6 + w and v = 4 + z and -4 <= w <= 4)
    ((x)   | x < 0 or x > 1)

Grammar (informal)::

    cst        := '(' '(' varlist ')' '|' body ')'
    body       := disjunct ('or' disjunct)*
    disjunct   := unit ('and' unit)*
    unit       := 'not' unit
                | 'exists' varlist '.' unit
                | '(' body ')'
                | comparison
    comparison := arith (relop arith)+           -- chains allowed
    relop      := '<=' | '<' | '>=' | '>' | '=' | '==' | '!=' | '<>'
    arith      := ['-'] term (('+'|'-') term)*
    term       := factor ('*' factor)*
    factor     := NUMBER | IDENT | '(' arith ')'

Numbers may be integers, decimals, or rationals like ``3/4`` (the ``/``
binds tighter than arithmetic; ``x/2`` divides a variable by two).
"""

from __future__ import annotations

import re
from fractions import Fraction

from repro.errors import ConstraintSyntaxError
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.cst_object import CSTObject, _conjoin_any, _disjoin_any
from repro.constraints.disjunctive import DisjunctiveConstraint
from repro.constraints.existential import (
    DisjunctiveExistentialConstraint,
    ExistentialConjunctiveConstraint,
)
from repro.constraints.terms import LinearExpression, Variable

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<relop><=|>=|==|!=|<>|<|>|=)
  | (?P<punct>[-+*/(),.|])
""", re.VERBOSE)

_KEYWORDS = {"and", "or", "not", "exists", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ConstraintSyntaxError(
                f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup
        value = match.group()
        if kind == "ws":
            continue
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        else:
            tokens.append((kind, value))
    tokens.append(("eof", ""))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- token plumbing --------------------------------------------------

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.pos]

    def next(self) -> tuple[str, str]:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> str:
        tok_kind, tok_value = self.peek()
        if tok_kind != kind or (value is not None and tok_value != value):
            wanted = value or kind
            raise ConstraintSyntaxError(
                f"expected {wanted!r}, found {tok_value or tok_kind!r} "
                f"in {self.text!r}")
        return self.next()[1]

    def accept(self, kind: str, value: str | None = None) -> bool:
        tok_kind, tok_value = self.peek()
        if tok_kind == kind and (value is None or tok_value == value):
            self.next()
            return True
        return False

    # -- entry points --------------------------------------------------------

    def parse_cst(self) -> CSTObject:
        self.expect("punct", "(")
        self.expect("punct", "(")
        schema = self.parse_varlist()
        self.expect("punct", ")")
        self.expect("punct", "|")
        body = self.parse_body()
        self.expect("punct", ")")
        self.expect("eof")
        return _projected(schema, body)

    def parse_constraint(self):
        body = self.parse_body()
        self.expect("eof")
        return body

    def parse_varlist(self) -> list[Variable]:
        names = [self.expect("ident")]
        while self.accept("punct", ","):
            names.append(self.expect("ident"))
        return [Variable(n) for n in names]

    # -- formula levels ------------------------------------------------------------

    def parse_body(self):
        result = self.parse_disjunct()
        while self.accept("kw", "or"):
            result = _disjoin_any(result, self.parse_disjunct())
        return result

    def parse_disjunct(self):
        result = self.parse_unit()
        while self.accept("kw", "and"):
            result = _conjoin_any(result, self.parse_unit())
        return result

    def parse_unit(self):
        kind, value = self.peek()
        if kind == "kw" and value == "not":
            self.next()
            inner = self.parse_unit()
            return _negate(inner)
        if kind == "kw" and value == "exists":
            self.next()
            quantified = self.parse_varlist()
            self.expect("punct", ".")
            inner = self.parse_unit()
            return _quantify(inner, quantified)
        if kind == "kw" and value == "true":
            self.next()
            return ConjunctiveConstraint.true()
        if kind == "kw" and value == "false":
            self.next()
            return ConjunctiveConstraint.false()
        if kind == "punct" and value == "(":
            # Could be a parenthesized formula or a parenthesized
            # arithmetic subexpression starting a comparison; try the
            # formula first, backtrack on failure.
            saved = self.pos
            try:
                self.next()
                inner = self.parse_body()
                self.expect("punct", ")")
                # If a relop follows, this was arithmetic after all.
                if self.peek()[0] == "relop":
                    raise ConstraintSyntaxError("arithmetic context")
                return inner
            except ConstraintSyntaxError:
                self.pos = saved
        return self.parse_comparison()

    def parse_comparison(self):
        left = self.parse_arith()
        kind, value = self.peek()
        if kind != "relop":
            raise ConstraintSyntaxError(
                f"expected a comparison operator after {left} "
                f"in {self.text!r}")
        atoms: list[LinearConstraint] = []
        while self.peek()[0] == "relop":
            op = self.next()[1]
            right = self.parse_arith()
            atoms.append(LinearConstraint.build(left, _RELOPS[op], right))
            left = right
        return ConjunctiveConstraint(atoms)

    # -- arithmetic ---------------------------------------------------------------------

    def parse_arith(self) -> LinearExpression:
        negate = False
        if self.accept("punct", "-"):
            negate = True
        result = self.parse_term()
        if negate:
            result = -result
        while True:
            if self.accept("punct", "+"):
                result = result + self.parse_term()
            elif self.accept("punct", "-"):
                result = result - self.parse_term()
            else:
                return result

    def parse_term(self) -> LinearExpression:
        result = self.parse_factor()
        while True:
            if self.accept("punct", "*"):
                result = result * self.parse_factor()
            elif self.accept("punct", "/"):
                divisor = self.parse_factor()
                if not divisor.is_constant():
                    raise ConstraintSyntaxError(
                        "division by a non-constant is not linear")
                result = result / divisor.constant_term
            else:
                return result

    def parse_factor(self) -> LinearExpression:
        kind, value = self.peek()
        if kind == "number":
            self.next()
            number = Fraction(value) if "." not in value \
                else Fraction(value)
            # Implicit multiplication: "2x" arrives as two tokens.
            if self.peek()[0] == "ident":
                var = Variable(self.next()[1])
                return var.as_expression() * number
            return LinearExpression.constant(number)
        if kind == "ident":
            self.next()
            return Variable(value).as_expression()
        if kind == "punct" and value == "(":
            self.next()
            inner = self.parse_arith()
            self.expect("punct", ")")
            return inner
        if kind == "punct" and value == "-":
            self.next()
            return -self.parse_factor()
        raise ConstraintSyntaxError(
            f"expected a number, variable or '(', found "
            f"{value or kind!r} in {self.text!r}")


_RELOPS = {
    "<=": Relop.LE, "<": Relop.LT, ">=": Relop.GE, ">": Relop.GT,
    "=": Relop.EQ, "==": Relop.EQ, "!=": Relop.NE, "<>": Relop.NE,
}


def _negate(constraint):
    if isinstance(constraint, ConjunctiveConstraint):
        return DisjunctiveConstraint.negation_of_conjunctive(constraint)
    if isinstance(constraint, DisjunctiveConstraint):
        return constraint.negate()
    raise ConstraintSyntaxError(
        "negation is only defined on conjunctive and disjunctive "
        "formulas (Section 3.1)")


def _quantify(constraint, quantified: list[Variable]):
    if isinstance(constraint, ConjunctiveConstraint):
        return ExistentialConjunctiveConstraint(constraint, quantified)
    if isinstance(constraint, ExistentialConjunctiveConstraint):
        return ExistentialConjunctiveConstraint(
            constraint.body, constraint.quantified | set(quantified))
    if isinstance(constraint, (DisjunctiveConstraint,
                               DisjunctiveExistentialConstraint)):
        dex = DisjunctiveExistentialConstraint.of(constraint)
        keep = dex.free_variables - set(quantified)
        return dex.project(keep)
    raise ConstraintSyntaxError(f"cannot quantify {constraint!r}")


def _projected(schema: list[Variable], body) -> CSTObject:
    free = set(_free_vars(body))
    hidden = free - set(schema)
    if hidden:
        if isinstance(body, ConjunctiveConstraint):
            body = ExistentialConjunctiveConstraint(body, hidden)
        elif isinstance(body, ExistentialConjunctiveConstraint):
            body = ExistentialConjunctiveConstraint(
                body.body, body.quantified | hidden)
        else:
            body = DisjunctiveExistentialConstraint.of(body).project(
                set(schema) & free)
    return CSTObject(schema, body)


def _free_vars(body):
    return body.variables


def parse_cst(text: str) -> CSTObject:
    """Parse a CST object in projection notation
    ``((x,y) | x + y <= 1 and ...)``."""
    try:
        return _Parser(text).parse_cst()
    except RecursionError:
        raise ConstraintSyntaxError(
            "constraint too deeply nested to parse") from None


def parse_constraint(text: str):
    """Parse a bare constraint formula (no projection head); returns a
    member of the most specific applicable family."""
    try:
        return _Parser(text).parse_constraint()
    except RecursionError:
        raise ConstraintSyntaxError(
            "constraint too deeply nested to parse") from None

"""Disjunctive constraints: disjunctions of conjunctions (DNF).

Per Section 3.1 a *disjunctive constraint* is built from conjunctive
constraints and their negations, closed under ``or``, ``and``, and the
restricted projection (eliminate one / keep one variable).  Geometrically
it denotes a finite union of convex polyhedra.

Always-on simplifications (the paper's choice, since full redundancy
detection among disjuncts is co-NP-complete): deletion of syntactically
false disjuncts and of syntactic duplicates.  LP-based deletion of
*inconsistent* (unsatisfiable) disjuncts lives in
:mod:`repro.constraints.canonical`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from repro.errors import ConstraintFamilyError
from repro.constraints import projection as projection_mod
from repro.constraints.atoms import LinearConstraint
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.implication import negated_atom_branches
from repro.constraints.terms import RationalLike, Variable
from repro.runtime.guard import current_guard


class DisjunctiveConstraint:
    """An immutable disjunction of :class:`ConjunctiveConstraint`.

    The empty disjunction is FALSE; a disjunction containing the empty
    conjunction is TRUE (and collapses to it).
    """

    __slots__ = ("_disjuncts", "_hash")

    def __init__(self, disjuncts: Iterable[ConjunctiveConstraint] = ()):
        cleaned: list[ConjunctiveConstraint] = []
        seen: set[ConjunctiveConstraint] = set()
        for d in disjuncts:
            if isinstance(d, LinearConstraint):
                d = ConjunctiveConstraint.of(d)
            if not isinstance(d, ConjunctiveConstraint):
                raise TypeError(
                    f"expected ConjunctiveConstraint, got {d!r}")
            if d.is_syntactically_false():
                continue
            if d.is_true():
                cleaned = [ConjunctiveConstraint.true()]
                seen = {cleaned[0]}
                break
            if d not in seen:
                seen.add(d)
                cleaned.append(d)
        self._disjuncts = tuple(cleaned)
        self._hash: int | None = None
        guard = current_guard()
        if guard is not None:
            guard.note_disjuncts(len(self._disjuncts))

    # -- constructors -----------------------------------------------------

    @classmethod
    def true(cls) -> "DisjunctiveConstraint":
        return cls((ConjunctiveConstraint.true(),))

    @classmethod
    def false(cls) -> "DisjunctiveConstraint":
        return cls(())

    @classmethod
    def of_conjunctive(cls, conj: ConjunctiveConstraint
                       ) -> "DisjunctiveConstraint":
        return cls((conj,))

    @classmethod
    def negation_of_conjunctive(cls, conj: ConjunctiveConstraint
                                ) -> "DisjunctiveConstraint":
        """``not conj`` as a disjunction of single-atom conjunctions."""
        disjuncts: list[ConjunctiveConstraint] = []
        for atom in conj.atoms:
            for branch in negated_atom_branches(atom):
                disjuncts.append(ConjunctiveConstraint.of(branch))
        return cls(disjuncts)

    # -- inspection ---------------------------------------------------------

    @property
    def disjuncts(self) -> tuple[ConjunctiveConstraint, ...]:
        return self._disjuncts

    @property
    def variables(self) -> frozenset[Variable]:
        result: set[Variable] = set()
        for d in self._disjuncts:
            result.update(d.variables)
        return frozenset(result)

    def is_syntactically_false(self) -> bool:
        return not self._disjuncts

    def is_true(self) -> bool:
        return any(d.is_true() for d in self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveConstraint]:
        return iter(self._disjuncts)

    # -- logical operations ----------------------------------------------------

    def disjoin(self, other: "DisjunctiveConstraint | ConjunctiveConstraint"
                ) -> "DisjunctiveConstraint":
        other = _as_disjunctive(other)
        return DisjunctiveConstraint(self._disjuncts + other._disjuncts)

    __or__ = disjoin

    def conjoin(self, other) -> "DisjunctiveConstraint":
        """Conjunction by distribution (cross product of disjuncts)."""
        if isinstance(other, LinearConstraint):
            other = ConjunctiveConstraint.of(other)
        if isinstance(other, ConjunctiveConstraint):
            return DisjunctiveConstraint(
                d.conjoin(other) for d in self._disjuncts)
        other = _as_disjunctive(other)
        return DisjunctiveConstraint(
            a.conjoin(b) for a in self._disjuncts for b in other._disjuncts)

    __and__ = conjoin

    def negate(self) -> "DisjunctiveConstraint":
        """Full negation: conjunction of the negations of the disjuncts."""
        result = DisjunctiveConstraint.true()
        for d in self._disjuncts:
            result = result.conjoin(
                DisjunctiveConstraint.negation_of_conjunctive(d))
        return result

    def holds_at(self, point: Mapping[Variable, RationalLike]) -> bool:
        return any(d.holds_at(point) for d in self._disjuncts)

    def substitute(self, bindings) -> "DisjunctiveConstraint":
        return DisjunctiveConstraint(
            d.substitute(bindings) for d in self._disjuncts)

    def rename(self, mapping: Mapping[Variable, Variable]
               ) -> "DisjunctiveConstraint":
        return DisjunctiveConstraint(
            d.rename(mapping) for d in self._disjuncts)

    # -- satisfiability / entailment ------------------------------------------

    def is_satisfiable(self) -> bool:
        return any(d.is_satisfiable() for d in self._disjuncts)

    def sample_point(self) -> Mapping[Variable, Fraction] | None:
        for d in self._disjuncts:
            point = d.sample_point()
            if point is not None:
                return point
        return None

    def entails(self, other: "DisjunctiveConstraint | ConjunctiveConstraint"
                ) -> bool:
        from repro.constraints import implication
        other = _as_disjunctive(other)
        return implication.disjunction_entails_disjunction(
            list(self._disjuncts), list(other._disjuncts))

    # -- projection -----------------------------------------------------------

    def restricted_project(self, free: Iterable[Variable]
                           ) -> "DisjunctiveConstraint":
        """The paper's restricted projection, applied disjunct-wise.

        The one-or-all-but-one condition is checked against the free
        variables of the *whole* disjunction.
        """
        free_set = frozenset(free)
        occurring = self.variables
        eliminated = occurring - free_set
        kept = occurring & free_set
        if len(eliminated) > 1 and len(kept) > 1:
            raise ConstraintFamilyError(
                f"restricted projection may eliminate one variable or "
                f"keep one; this application eliminates "
                f"{sorted(v.name for v in eliminated)} while keeping "
                f"{sorted(v.name for v in kept)}")
        return self.project(free_set)

    def project(self, free: Iterable[Variable]) -> "DisjunctiveConstraint":
        """Unrestricted disjunct-wise elimination (exact: projection
        distributes over union).  Disequalities mentioning an eliminated
        variable are split into strict branches first."""
        free_set = frozenset(free)
        out: list[ConjunctiveConstraint] = []
        for d in self._disjuncts:
            for piece in _split_disequalities_on(d, free_set):
                out.append(projection_mod.project_conjunctive(piece, free_set))
        return DisjunctiveConstraint(out)

    # -- identity ------------------------------------------------------------------

    def sorted_disjuncts(self) -> tuple[ConjunctiveConstraint, ...]:
        return tuple(sorted(
            self._disjuncts,
            key=lambda d: tuple(a.sort_key() for a in d.sorted_atoms())))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DisjunctiveConstraint):
            return NotImplemented
        return self.sorted_disjuncts() == other.sorted_disjuncts()

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                ("DisjunctiveConstraint", self.sorted_disjuncts()))
        return self._hash

    def __repr__(self) -> str:
        return f"DisjunctiveConstraint({self})"

    def __str__(self) -> str:
        if not self._disjuncts:
            return "FALSE"
        return " or ".join(f"({d})" for d in self.sorted_disjuncts())


def _as_disjunctive(value) -> DisjunctiveConstraint:
    if isinstance(value, DisjunctiveConstraint):
        return value
    if isinstance(value, ConjunctiveConstraint):
        return DisjunctiveConstraint.of_conjunctive(value)
    if isinstance(value, LinearConstraint):
        return DisjunctiveConstraint.of_conjunctive(
            ConjunctiveConstraint.of(value))
    raise TypeError(f"cannot treat {value!r} as a disjunctive constraint")


def _split_disequalities_on(conj: ConjunctiveConstraint,
                            free: frozenset[Variable]
                            ) -> list[ConjunctiveConstraint]:
    """Split every disequality that mentions a to-be-eliminated variable
    into its two strict branches, producing a small disjunction of
    conjunctions each safe for Fourier-Motzkin."""
    pending = [a for a in conj.disequalities()
               if a.variables - free]
    if not pending:
        return [conj]
    base = ConjunctiveConstraint(
        a for a in conj.atoms if a not in pending)
    results = [base]
    for atom in pending:
        below, above = atom.split_disequality()
        results = [r.conjoin(branch)
                   for r in results for branch in (below, above)]
    return results

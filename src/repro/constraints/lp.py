"""Linear programming operators: the paper's ``MAX``/``MIN``/``MAX_POINT``/
``MIN_POINT`` SELECT-clause expressions (Section 4.2).

``MAX(f SUBJECT TO ((x1..xn) | phi))`` maximizes the linear objective
``f`` over an existential conjunctive formula ``phi``.  Quantified
variables simply participate in the system (an existential witness is
part of the LP); strict inequalities make the optimum a supremum — per
standard LP practice (and CLP(R))'s treatment) we optimize over the
topological closure and report whether the supremum is *attained*.

Two backends:

* ``exact`` (default) — the rational simplex of
  :mod:`repro.constraints.simplex`; exact optima, required for canonical
  results;
* ``scipy`` — ``scipy.optimize.linprog`` (HiGHS) on floats; kept as the
  ablation baseline of experiment E11 and for large problems where exact
  arithmetic is too slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.errors import ConstraintError, InfeasibleError, UnboundedError
from repro.constraints import simplex
from repro.constraints.atoms import LinearConstraint, Relop
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.existential import ExistentialConjunctiveConstraint
from repro.constraints.terms import LinearExpression, Variable


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of MAX/MIN.

    ``value`` is the supremum/infimum of the objective; ``attained`` is
    False when only strict constraints prevent reaching it (the paper's
    operators then have no witness point and ``point`` is the closure
    optimizer).  ``point`` binds the free and quantified variables.
    """

    value: Fraction
    point: Mapping[Variable, Fraction]
    attained: bool

    def point_on(self, variables) -> dict[Variable, Fraction]:
        """Restrict the witness point to ``variables`` (e.g. a CST
        object's schema) — the paper's MAX_POINT/MIN_POINT result."""
        return {v: self.point.get(v, Fraction(0)) for v in variables}


def maximize(objective, system) -> simplex.LPResult:
    """Raw maximization (status-style result, no exceptions)."""
    return _solve_raw(objective, system, maximize=True)


def minimize(objective, system) -> simplex.LPResult:
    return _solve_raw(objective, system, maximize=False)


def max_value(objective, system, backend: str = "exact"
              ) -> OptimizationResult:
    """The paper's ``MAX(f SUBJECT TO system)``.

    Raises :class:`InfeasibleError` / :class:`UnboundedError` for the
    degenerate cases (the query evaluator maps these onto empty
    answers / errors per its own policy).
    """
    return _optimize(objective, system, maximize=True, backend=backend)


def min_value(objective, system, backend: str = "exact"
              ) -> OptimizationResult:
    """The paper's ``MIN(f SUBJECT TO system)``."""
    return _optimize(objective, system, maximize=False, backend=backend)


def _coerce_system(system) -> ConjunctiveConstraint:
    if isinstance(system, ExistentialConjunctiveConstraint):
        # Quantified variables take part in the optimization as witnesses;
        # the optimum over ((x..)|phi) equals the optimum over phi when
        # the objective only mentions free variables.
        return system.body
    if isinstance(system, ConjunctiveConstraint):
        return system
    if isinstance(system, LinearConstraint):
        return ConjunctiveConstraint.of(system)
    raise ConstraintError(
        f"MAX/MIN SUBJECT TO requires an existential conjunctive "
        f"formula, got {type(system).__name__}")


def _coerce_systems(system) -> list[ConjunctiveConstraint]:
    """The system as a list of conjunctive branches.

    The paper types MAX/MIN over existential conjunctive formulas; we
    extend them to the disjunctive families by optimizing each branch
    and combining (the optimum over a union is the best over its
    parts) — needed e.g. to minimize over recurring time windows.
    """
    from repro.constraints.disjunctive import DisjunctiveConstraint
    from repro.constraints.existential import (
        DisjunctiveExistentialConstraint)
    if isinstance(system, DisjunctiveConstraint):
        return list(system.disjuncts)
    if isinstance(system, DisjunctiveExistentialConstraint):
        return [d.body for d in system.disjuncts]
    return [_coerce_system(system)]


def _split_atoms(conj: ConjunctiveConstraint):
    if conj.disequalities():
        raise ConstraintError(
            "MAX/MIN over a system with disequalities is not a single "
            "linear program; split the disequalities first")
    non_strict = [a.weakened() for a in conj.atoms]
    has_strict = any(a.relop is Relop.LT for a in conj.atoms)
    return non_strict, has_strict


def _solve_raw(objective, system, maximize: bool) -> simplex.LPResult:
    conj = _coerce_system(system)
    non_strict, _ = _split_atoms(conj)
    return simplex.solve(LinearExpression.coerce(objective), non_strict,
                         maximize=maximize)


def _optimize(objective, system, maximize: bool,
              backend: str) -> OptimizationResult:
    branches = _coerce_systems(system)
    if len(branches) > 1:
        return _optimize_branches(objective, branches, maximize,
                                  backend)
    if not branches:
        raise InfeasibleError("SUBJECT TO system is unsatisfiable "
                              "(empty disjunction)")
    conj = branches[0]
    objective = LinearExpression.coerce(objective)
    non_strict, has_strict = _split_atoms(conj)

    if backend == "exact":
        result = simplex.solve(objective, non_strict, maximize=maximize)
        if result.is_infeasible:
            raise InfeasibleError("SUBJECT TO system is unsatisfiable")
        if result.is_unbounded:
            direction = "above" if maximize else "below"
            raise UnboundedError(f"objective is unbounded {direction}")
        value, point = result.value, dict(result.point)
    elif backend == "scipy":
        value, point = _scipy_solve(objective, non_strict, maximize)
    else:
        raise ValueError(f"unknown LP backend {backend!r}")

    attained = True
    if has_strict:
        # The optimum is attained iff some point of the *open* region
        # reaches it: check satisfiability of the original (strict)
        # system together with "objective = value".
        witness = conj.conjoin(
            LinearConstraint.build(objective, Relop.EQ, value))
        sample = witness.sample_point()
        if sample is None:
            attained = False
        else:
            point = dict(sample)
    # Strict feasibility of the open region itself must hold for the
    # problem to be meaningful at all.
    if has_strict and not conj.is_satisfiable():
        raise InfeasibleError("SUBJECT TO system is unsatisfiable "
                              "(only its closure is feasible)")
    return OptimizationResult(value=value, point=point, attained=attained)


def _optimize_branches(objective, branches, maximize: bool,
                       backend: str) -> OptimizationResult:
    """Optimize each disjunct independently; the union's optimum is the
    best branch optimum."""
    best: OptimizationResult | None = None
    feasible = False
    for branch in branches:
        try:
            result = _optimize(objective, branch, maximize, backend)
        except InfeasibleError:
            continue
        feasible = True
        if best is None \
                or (maximize and result.value > best.value) \
                or (not maximize and result.value < best.value) \
                or (result.value == best.value and result.attained
                    and not best.attained):
            best = result
    if not feasible or best is None:
        raise InfeasibleError("SUBJECT TO system is unsatisfiable "
                              "(every disjunct is empty)")
    return best


def _scipy_solve(objective: LinearExpression,
                 atoms: list[LinearConstraint],
                 maximize: bool) -> tuple[Fraction, dict[Variable, Fraction]]:
    """Float LP via scipy/HiGHS; results are converted to (approximate)
    Fractions — use only where exactness is not required."""
    try:
        import numpy as np
        from scipy.optimize import linprog
    except ImportError as exc:  # pragma: no cover - scipy is installed here
        raise ConstraintError(
            "the scipy backend requires scipy to be installed") from exc

    variables = sorted(
        set(objective.variables).union(*(a.variables for a in atoms))
        if atoms else set(objective.variables),
        key=lambda v: v.name)
    index = {v: i for i, v in enumerate(variables)}
    n = len(variables)

    c = np.zeros(n)
    for var, coeff in objective.coefficients.items():
        c[index[var]] = float(coeff)
    if maximize:
        c = -c

    a_ub, b_ub, a_eq, b_eq = [], [], [], []
    for atom in atoms:
        row = np.zeros(n)
        for var, coeff in atom.expression.coefficients.items():
            row[index[var]] = float(coeff)
        if atom.relop is Relop.LE:
            a_ub.append(row)
            b_ub.append(float(atom.bound))
        else:
            a_eq.append(row)
            b_eq.append(float(atom.bound))

    result = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq) if a_eq else None,
        b_eq=np.array(b_eq) if b_eq else None,
        bounds=[(None, None)] * n,
        method="highs")
    if result.status == 2:
        raise InfeasibleError("SUBJECT TO system is unsatisfiable")
    if result.status == 3:
        raise UnboundedError("objective is unbounded")
    if not result.success:  # pragma: no cover - defensive
        raise ConstraintError(f"scipy linprog failed: {result.message}")

    value = Fraction(str(float(-result.fun if maximize else result.fun)))
    value += objective.constant_term
    point = {v: Fraction(str(float(result.x[index[v]])))
             for v in variables}
    return value, point

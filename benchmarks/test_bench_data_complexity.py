"""E7 — Section 5 claim: PTIME data complexity.

A *fixed* query (one CST projection + SAT filter per placed object) is
evaluated against office databases of growing size.  The paper claims
translation to flat SQL with linear constraints gives polynomial data
complexity; the harness fits the log-log slope of this series (expect
~1 for this single-join query; see EXPERIMENTS.md)."""

import pytest

from repro import lyric
from repro.workloads import office
from conftest import office_workload

SIZES = [4, 8, 16, 32, 64]


@pytest.mark.parametrize("n", SIZES)
def test_fixed_query_scaling_naive(benchmark, n):
    workload = office_workload(n)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db, office.PLACED_EXTENT_QUERY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == n


@pytest.mark.parametrize("n", SIZES)
def test_fixed_query_scaling_translated(benchmark, n):
    workload = office_workload(n)
    result = benchmark.pedantic(
        lyric.query_translated,
        args=(workload.db, office.PLACED_EXTENT_QUERY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == n


@pytest.mark.parametrize("n", [4, 8, 16])
def test_quadratic_join_scaling(benchmark, n):
    """A two-variable join (the entailment filter query) grows with the
    number of desks — still polynomial, a steeper fixed query."""
    workload = office_workload(n)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db, office.RED_LEFT_DRAWER_QUERY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) <= n

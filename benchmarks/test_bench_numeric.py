"""ISSUE 5 — batched numeric kernels on a dense-join workload.

The acceptance benchmark: joining two relations of heavily overlapping
CST polytopes on constraint intersection must run at least 3x faster
with the numeric fast path (columnar packing + batched float LP
prefilter + exact-rational fallback) than through the same indexed
plan with numeric off — on a workload where the box index itself
prunes *less than half* of the pairs (``candidate_fraction >= 0.5``),
so the win is attributable to the kernel, not the index.  Results must
be byte-identical (``repr`` of every row, which renders the exact
canonical forms).  Numbers land in ``BENCH_numeric.json``.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import pytest

from repro.constraints.cst_object import CSTObject
from repro.constraints.satisfiability import is_satisfiable
from repro.model.oid import LiteralOid
from repro.runtime import numeric_available, numeric_mode
from repro.runtime.cache import caching
from repro.sqlc import index
from repro.sqlc.algebra import CstPredicate, IndexJoin, Scan
from repro.sqlc.engine import ExecutionStats, execute
from repro.sqlc.relation import ConstraintRelation
from repro.workloads.random_constraints import (
    make_variables,
    overlapping_polytopes,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_numeric.json"

N_LEFT = 36
N_RIGHT = 36
DIMENSION = 2
EXTRA_ATOMS = 8
SPREAD = 100
SIZE = 80
ROUNDS = 3


def _sat_intersection(a, b):
    return is_satisfiable(a.cst.constraint.conjoin(b.cst.constraint))


def _conjoined(a, b):
    return a.cst.constraint.conjoin(b.cst.constraint)


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)),
        _conjoined)


def _catalog():
    vars_ = make_variables(DIMENSION)
    lefts = overlapping_polytopes(N_LEFT, DIMENSION, EXTRA_ATOMS,
                                  seed=21, spread=SPREAD, size=SIZE)
    rights = overlapping_polytopes(N_RIGHT, DIMENSION, EXTRA_ATOMS,
                                   seed=23, spread=SPREAD, size=SIZE)
    left = ConstraintRelation("L", ("lid", "e"), [
        (LiteralOid(i), CSTObject(vars_, c))
        for i, c in enumerate(lefts)])
    right = ConstraintRelation("R", ("rid", "f"), [
        (LiteralOid(i), CSTObject(vars_, c))
        for i, c in enumerate(rights)])
    return {"L": left, "R": right}


def _plan():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box, index.cst_cell_box,
                     _predicate())


def _median_time(fn) -> tuple[float, object]:
    samples, result = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def _rows(relation) -> list:
    return [tuple(map(repr, row)) for row in relation]


@pytest.mark.skipif(not numeric_available(),
                    reason="numeric fast path needs numpy")
def test_numeric_kernel_speedup_and_equivalence():
    catalog = _catalog()
    total_pairs = N_LEFT * N_RIGHT

    exact_stats = ExecutionStats()

    def run_exact():
        index.clear_index_cache()
        with caching(None), numeric_mode(False):
            return _rows(execute(_plan(), catalog,
                                 use_optimizer=False,
                                 stats=exact_stats))

    numeric_stats = ExecutionStats()

    def run_numeric():
        index.clear_index_cache()
        with caching(None), numeric_mode(True):
            return _rows(execute(_plan(), catalog,
                                 use_optimizer=False,
                                 stats=numeric_stats))

    t_exact, baseline = _median_time(run_exact)
    t_numeric, accelerated = _median_time(run_numeric)

    assert accelerated == baseline

    candidates = total_pairs - exact_stats.candidates_pruned
    candidate_fraction = candidates / total_pairs
    decided = numeric_stats.numeric_accepts + numeric_stats.numeric_rejects
    speedup = t_exact / t_numeric
    payload = {
        "experiment": "E18",
        "workload": {
            "left_rows": N_LEFT,
            "right_rows": N_RIGHT,
            "total_pairs": total_pairs,
            "dimension": DIMENSION,
            "extra_atoms_per_side": EXTRA_ATOMS,
            "spread": SPREAD,
            "box_size": SIZE,
            "result_rows": len(baseline),
        },
        "median_seconds_exact": round(t_exact, 4),
        "median_seconds_numeric": round(t_numeric, 4),
        "speedup_numeric": round(speedup, 2),
        "candidate_fraction": round(candidate_fraction, 4),
        "numeric_accepts": numeric_stats.numeric_accepts,
        "numeric_rejects": numeric_stats.numeric_rejects,
        "numeric_fallbacks": numeric_stats.numeric_fallbacks,
        "numeric_decided_fraction": round(
            decided / max(1, decided + numeric_stats.numeric_fallbacks),
            4),
        "exact_simplex_solves_baseline": exact_stats.simplex_solves,
        "exact_simplex_solves_numeric": numeric_stats.simplex_solves,
        "results_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert candidate_fraction >= 0.5, (
        f"box index pruned {1 - candidate_fraction:.1%} of this dense "
        f"workload; the kernel benchmark needs the exact phase to "
        f"dominate (see {RESULT_PATH})")
    assert speedup >= 3.0, (
        f"numeric-kernel speedup {speedup:.2f}x below the 3x "
        f"acceptance threshold (see {RESULT_PATH})")

"""ISSUE 2 — constraint cache + interval prefilter effectiveness.

The acceptance benchmark: a repeated canonicalization/satisfiability
workload (the flat engine's join-loop access pattern, where the same
constraints recur as fresh structurally-equal instances) must run at
least 2x faster with the cache and prefilter on than with both off,
with zero result differences.  The measured numbers are written to
``BENCH_cache.json`` at the repository root — the first point of the
bench trajectory CI tracks.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.constraints.canonical import canonical_conjunctive
from repro.constraints.conjunctive import ConjunctiveConstraint
from repro.constraints.satisfiability import is_satisfiable
from repro.runtime.cache import ConstraintCache, caching, prefilter
from repro.workloads.random_constraints import (
    random_infeasible,
    random_polytope,
    redundant_conjunction,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_cache.json"

#: How many times each unique constraint recurs in the workload.
REPEATS = 5
ROUNDS = 3


def _workload() -> list[ConjunctiveConstraint]:
    base = [redundant_conjunction(3, 5, 4, seed=s) for s in range(6)]
    base += [random_polytope(3, 8, seed=s) for s in range(6)]
    base += [random_infeasible(3, 8, seed=s) for s in range(6)]
    # Fresh instances per occurrence: nothing is shared object-wise, so
    # all reuse must come from the structural cache keys.
    return [ConjunctiveConstraint(c.atoms)
            for _ in range(REPEATS) for c in base]


def _evaluate(workload) -> list:
    return [(canonical_conjunctive(c), is_satisfiable(c))
            for c in workload]


def _median_time(fn) -> tuple[float, object]:
    samples, result = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def test_cache_speedup_and_equivalence():
    workload = _workload()

    def run_off():
        with caching(None), prefilter(False):
            return _evaluate(workload)

    counters = {}

    def run_on():
        cache = ConstraintCache()
        with caching(cache):
            result = _evaluate(workload)
        counters.update(cache.counters())
        return result

    t_off, baseline = _median_time(run_off)
    t_on, cached = _median_time(run_on)

    # Zero result differences between the modes.
    assert baseline == cached

    speedup = t_off / t_on
    hit_rate = counters["hits"] / max(
        1, counters["hits"] + counters["misses"])
    payload = {
        "experiment": "E16",
        "workload": {
            "unique_constraints": len(workload) // REPEATS,
            "repeats": REPEATS,
            "total_evaluations": len(workload),
        },
        "median_seconds_disabled": round(t_off, 4),
        "median_seconds_cached": round(t_on, 4),
        "speedup": round(speedup, 2),
        "hit_rate": round(hit_rate, 3),
        "cache_hits": counters["hits"],
        "cache_misses": counters["misses"],
        "cache_evictions": counters["evictions"],
        "simplex_solves_saved": counters["simplex_saved"],
        "results_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= 2.0, (
        f"cache+prefilter speedup {speedup:.2f}x below the 2x "
        f"acceptance threshold (see {RESULT_PATH})")


def test_warm_cache_hit_rate():
    """A second pass over the same workload through a shared cache is
    almost entirely hits."""
    workload = _workload()
    cache = ConstraintCache()
    with caching(cache):
        first = _evaluate(workload)
        warm_start_hits = cache.hits
        second = _evaluate(workload)
    assert first == second
    top_level_lookups = 2 * len(workload)   # canon + sat per item
    second_pass_hits = cache.hits - warm_start_hits
    assert second_pass_hits >= top_level_lookups

"""E11 — the MAX/MIN SUBJECT TO operators: exact rational simplex vs
the scipy (HiGHS, float) backend.

Exactness is what canonical forms require; the ablation shows what it
costs on growing systems."""

import pytest

from repro.constraints import lp
from repro.constraints.terms import LinearExpression
from repro.workloads.random_constraints import (
    make_variables,
    random_polytope,
)

SIZES = [(4, 8), (6, 16), (8, 32)]  # (dimension, atoms)


def _objective(dim):
    vars_ = make_variables(dim)
    return LinearExpression({v: i + 1 for i, v in enumerate(vars_)})


@pytest.mark.parametrize("dim,atoms", SIZES)
def test_exact_backend(benchmark, dim, atoms):
    poly = random_polytope(dim, atoms, seed=dim)
    objective = _objective(dim)
    result = benchmark.pedantic(
        lp.max_value, args=(objective, poly),
        kwargs={"backend": "exact"},
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.attained


@pytest.mark.parametrize("dim,atoms", SIZES)
def test_scipy_backend(benchmark, dim, atoms):
    pytest.importorskip("scipy")
    poly = random_polytope(dim, atoms, seed=dim)
    objective = _objective(dim)
    result = benchmark.pedantic(
        lp.max_value, args=(objective, poly),
        kwargs={"backend": "scipy"},
        rounds=3, iterations=1, warmup_rounds=1)
    assert result.attained


def test_backends_agree():
    pytest.importorskip("scipy")
    for dim, atoms in SIZES:
        poly = random_polytope(dim, atoms, seed=dim)
        objective = _objective(dim)
        exact = lp.max_value(objective, poly, backend="exact")
        approx = lp.max_value(objective, poly, backend="scipy")
        assert float(approx.value) == pytest.approx(
            float(exact.value), rel=1e-6)

"""Shared fixtures for the benchmark suite.

Workload construction is excluded from timed regions: generators are
cached per (kind, size) so repeated benchmark rounds reuse the same
database objects.
"""

from __future__ import annotations

import pytest

from repro.workloads import manufacturing, mda, office

_CACHE: dict = {}


def office_workload(n: int, seed: int = 0):
    key = ("office", n, seed)
    if key not in _CACHE:
        _CACHE[key] = office.generate(n, seed=seed)
    return _CACHE[key]


def mda_workload(goals: int, maneuvers: int, seed: int = 0):
    key = ("mda", goals, maneuvers, seed)
    if key not in _CACHE:
        _CACHE[key] = mda.generate(goals, maneuvers, seed=seed)
    return _CACHE[key]


def manufacturing_workload(products: int, orders: int, seed: int = 0):
    key = ("manufacturing", products, orders, seed)
    if key not in _CACHE:
        _CACHE[key] = manufacturing.generate(
            products, n_orders=orders, seed=seed)
    return _CACHE[key]


@pytest.fixture(scope="session")
def workloads():
    """Accessor bundle handed to benchmark functions."""
    return {
        "office": office_workload,
        "mda": mda_workload,
        "manufacturing": manufacturing_workload,
    }

"""Experiment harness: regenerates every series reported in
EXPERIMENTS.md.

Run with::

    python benchmarks/harness.py            # all experiments
    python benchmarks/harness.py E7 E9      # a subset

Each experiment prints a small table; EXPERIMENTS.md records one such
run next to the paper's corresponding claim.  Timings are wall-clock
medians of ``repeats`` runs on whatever machine this executes on — the
*shapes* (scaling exponents, blow-ups, orderings), not the absolute
numbers, are the reproduction targets.
"""

from __future__ import annotations

import math
import statistics
import sys
import time

from repro import lyric
from repro.constraints import lp
from repro.constraints.canonical import (
    canonical_conjunctive,
    canonical_disjunctive,
)
from repro.constraints.implication import (
    conjunctive_entails_conjunctive,
    conjunctive_entails_disjunction,
)
from repro.constraints.projection import (
    eliminate_variable,
    project_conjunctive,
)
from repro.constraints.satisfiability import is_satisfiable
from repro.constraints.terms import LinearExpression
from repro.workloads import manufacturing, mda, office
from repro.workloads.random_constraints import (
    dense_system,
    make_variables,
    random_dnf,
    random_infeasible,
    random_polytope,
    redundant_conjunction,
)


def timed(fn, repeats: int = 3) -> tuple[float, object]:
    """Median wall-clock seconds and the last result."""
    samples = []
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def fit_loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) against log(x) — the empirical
    polynomial degree of a scaling series."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((a - mean_x) ** 2 for a in lx)
    sxy = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    return sxy / sxx


def header(name: str, title: str) -> None:
    print(f"\n=== {name}: {title} ===")


def experiment_e7() -> None:
    header("E7", "PTIME data complexity (fixed query vs database size)")
    sizes = [4, 8, 16, 32, 64]
    print(f"{'n':>5} {'naive (s)':>12} {'translated (s)':>15} {'rows':>6}")
    naive_times, translated_times = [], []
    for n in sizes:
        workload = office.generate(n, seed=0)
        t_naive, result = timed(
            lambda: lyric.query(workload.db,
                                office.PLACED_EXTENT_QUERY))
        t_trans, _ = timed(
            lambda: lyric.query_translated(workload.db,
                                           office.PLACED_EXTENT_QUERY))
        naive_times.append(t_naive)
        translated_times.append(t_trans)
        print(f"{n:>5} {t_naive:>12.4f} {t_trans:>15.4f} "
              f"{len(result):>6}")
    print(f"fitted log-log slope: naive "
          f"{fit_loglog_slope(sizes, naive_times):.2f}, translated "
          f"{fit_loglog_slope(sizes, translated_times):.2f} "
          f"(paper claims polynomial; this query is ~linear)")


def experiment_e8() -> None:
    header("E8", "naive evaluator vs Section 5 translation")
    n = 32
    workload = office.generate(n, seed=0)
    rows = []
    for label, fn in [
        ("naive", lambda: lyric.query(
            workload.db, office.PLACED_EXTENT_QUERY)),
        ("translated+optimizer", lambda: lyric.query_translated(
            workload.db, office.PLACED_EXTENT_QUERY)),
        ("translated raw", lambda: lyric.query_translated(
            workload.db, office.PLACED_EXTENT_QUERY,
            use_optimizer=False)),
    ]:
        t, result = timed(fn)
        rows.append((label, t, len(result)))
    base = rows[0][1]
    print(f"{'engine':>22} {'median (s)':>12} {'rows':>6} {'vs naive':>9}")
    for label, t, count in rows:
        print(f"{label:>22} {t:>12.4f} {count:>6} {base / t:>8.2f}x")


def experiment_e9() -> None:
    header("E9", "restricted projection vs full quantifier elimination")
    from test_bench_projection import intermediate_sizes
    print(f"{'dim':>4} {'input':>6} {'1-step atoms':>13} "
          f"{'1-step (s)':>11} {'full (s)':>9}  intermediate sizes")
    for dim in [3, 4, 5]:
        system = dense_system(dim, seed=42)
        vars_ = make_variables(dim)
        t_single, single = timed(
            lambda: eliminate_variable(system, vars_[0]))
        t_full, _ = timed(
            lambda: project_conjunctive(system, vars_[-1:]), repeats=1)
        sizes = intermediate_sizes(dim, seed=42)
        print(f"{dim:>4} {len(system):>6} {len(single):>13} "
              f"{t_single:>11.4f} {t_full:>9.4f}  {sizes}")
    # Dimension 6 full elimination is already intractable; report the
    # intermediate growth up to a size cap only.
    sizes6 = intermediate_sizes(6, seed=42, cap=1_000)
    print(f"   6  (full elimination intractable)        "
          f"intermediate sizes {sizes6} ... (capped)")
    print("(one restricted step grows mildly; successive eliminations "
          "compound into the classical FM explosion)")


def experiment_e10() -> None:
    header("E10", "canonical form cost and savings")
    print(f"{'disjuncts':>10} {'paper simpl. (s)':>17} {'kept':>5} "
          f"{'+atom redundancy (s)':>21} {'atoms saved':>12}")
    for k in [4, 8, 16]:
        dnf = random_dnf(3, k, 5, seed=k, infeasible_fraction=0.5)
        t_cheap, cheap = timed(
            lambda: canonical_disjunctive(
                dnf, remove_redundant_atoms=False))
        t_full, full = timed(
            lambda: canonical_disjunctive(
                dnf, remove_redundant_atoms=True), repeats=1)
        atoms_before = sum(len(d) for d in cheap.disjuncts)
        atoms_after = sum(len(d) for d in full.disjuncts)
        print(f"{k:>10} {t_cheap:>17.4f} {len(cheap):>5} "
              f"{t_full:>21.4f} {atoms_before - atoms_after:>12}")
    conj = redundant_conjunction(4, 8, 8, seed=3)
    t, canonical = timed(lambda: canonical_conjunctive(conj))
    print(f"conjunction: {len(conj)} atoms -> {len(canonical)} in "
          f"{t:.4f}s (redundant-atom removal)")
    # The operation the paper excludes (co-NP): opt-in disjunct
    # subsumption, for scale contrast.
    from repro.constraints.canonical import remove_subsumed_disjuncts
    dnf = random_dnf(2, 10, 3, seed=21, infeasible_fraction=0.0)
    t_sub, reduced = timed(
        lambda: remove_subsumed_disjuncts(dnf), repeats=1)
    print(f"opt-in disjunct subsumption: {len(dnf)} -> {len(reduced)} "
          f"disjuncts in {t_sub:.4f}s (excluded from the default "
          "canonical form)")


def experiment_e11() -> None:
    header("E11", "LP backends: exact rational simplex vs scipy/HiGHS")
    print(f"{'dim':>4} {'atoms':>6} {'exact (s)':>10} "
          f"{'scipy (s)':>10} {'values agree':>13}")
    for dim, atoms in [(4, 8), (6, 16), (8, 32)]:
        poly = random_polytope(dim, atoms, seed=dim)
        objective = LinearExpression(
            {v: i + 1 for i, v in enumerate(make_variables(dim))})
        t_exact, exact = timed(
            lambda: lp.max_value(objective, poly, backend="exact"))
        try:
            t_scipy, approx = timed(
                lambda: lp.max_value(objective, poly, backend="scipy"))
            agree = abs(float(approx.value) - float(exact.value)) < 1e-6
            print(f"{dim:>4} {atoms:>6} {t_exact:>10.4f} "
                  f"{t_scipy:>10.4f} {str(agree):>13}")
        except Exception:  # pragma: no cover - scipy absent
            print(f"{dim:>4} {atoms:>6} {t_exact:>10.4f} "
                  f"{'n/a':>10} {'n/a':>13}")


def experiment_e12() -> None:
    header("E12", "constraint predicate costs")
    print(f"{'atoms':>6} {'SAT (s)':>9} {'entail (s)':>11}")
    for atoms in [8, 16, 32]:
        poly = random_polytope(5, atoms, seed=atoms)
        outer = random_polytope(5, max(2, atoms // 4), seed=atoms + 1)
        t_sat, _ = timed(lambda: is_satisfiable(poly))
        t_ent, _ = timed(
            lambda: conjunctive_entails_conjunctive(poly, outer))
        print(f"{atoms:>6} {t_sat:>9.4f} {t_ent:>11.4f}")
    print(f"{'disjuncts':>10} {'entail-vs-DNF (s)':>18}")
    for k in [2, 4, 8]:
        lhs = random_polytope(3, 6, seed=k)
        rhs = random_dnf(3, k, 3, seed=k + 10)
        t, _ = timed(lambda: conjunctive_entails_disjunction(
            lhs, list(rhs.disjuncts)), repeats=1)
        print(f"{k:>10} {t:>18.4f}")


def experiment_e13() -> None:
    header("E13", "application queries end to end")
    office_w = office.generate(6, seed=4)
    mda_w = mda.generate(6, 5, seed=2)
    man_w = manufacturing.generate(3, n_orders=4, seed=1)
    for label, db, text in [
        ("office overlap join", office_w.db, office.OVERLAP_QUERY),
        ("mda compatibility", mda_w.db, mda.COMPATIBLE_QUERY),
        ("mda within (|=)", mda_w.db, mda.WITHIN_QUERY),
        ("manufacturing cheapest fill", man_w.db,
         manufacturing.CHEAPEST_FILL_QUERY),
        ("manufacturing max output", man_w.db,
         manufacturing.MAX_OUTPUT_QUERY),
    ]:
        t, result = timed(lambda: lyric.query(db, text), repeats=1)
        print(f"{label:>28}: {t:>8.3f}s, {len(result)} rows")


def experiment_e14() -> None:
    header("E14", "economical filtering: box filter-and-refine vs "
                  "exact-only overlap join")
    from test_bench_filtering import scattered
    from repro.constraints.filtering import overlap_join
    print(f"{'n':>4} {'filtered (s)':>13} {'exact-only (s)':>15} "
          f"{'LP tests saved':>15} {'matches':>8}")
    for n in [8, 16, 32]:
        items = scattered(n)
        t_f, (matches_f, stats_f) = timed(
            lambda: overlap_join(items, prefilter=True))
        t_n, (matches_n, stats_n) = timed(
            lambda: overlap_join(items, prefilter=False))
        assert sorted(matches_f) == sorted(matches_n)
        saved = stats_n.exact_tests - stats_f.exact_tests
        print(f"{n:>4} {t_f:>13.4f} {t_n:>15.4f} "
              f"{saved:>10}/{stats_n.exact_tests:<4} "
              f"{stats_f.matches:>8}")


def experiment_e15() -> None:
    header("E15", "binding order: interleaved skeleton joins vs the "
                  "literal all-substitutions product")
    from repro.core.evaluator import evaluate
    from test_bench_binding_order import QUERY
    print(f"{'n':>4} {'interleaved (s)':>16} {'product-first (s)':>18}")
    for n in [8, 16, 32]:
        workload = office.generate(n, seed=0)
        t_fast, fast = timed(
            lambda: evaluate(workload.db, QUERY, interleave=True))
        t_slow, slow = timed(
            lambda: evaluate(workload.db, QUERY, interleave=False))
        assert len(fast) == len(slow)
        print(f"{n:>4} {t_fast:>16.4f} {t_slow:>18.4f}")
    print("(same answers; the interleaved order prunes the cubic "
          "FROM product through the selective catalog_object and "
          "drawer joins)")


def experiment_e16() -> None:
    header("E16", "constraint cache + interval prefilter: repeated "
                  "canonicalization/satisfiability workload")
    from repro.constraints.canonical import canonical_conjunctive
    from repro.constraints.conjunctive import ConjunctiveConstraint
    from repro.runtime.cache import (
        ConstraintCache,
        caching,
        prefilter,
    )
    base = [redundant_conjunction(3, 5, 4, seed=s) for s in range(8)]
    base += [random_polytope(3, 8, seed=s) for s in range(8)]
    base += [random_infeasible(3, 8, seed=s) for s in range(8)]
    # The join-loop access pattern: the same constraints recur many
    # times as fresh (structurally equal) instances.
    workload = [ConjunctiveConstraint(c.atoms)
                for _ in range(5) for c in base]

    def run_all():
        return [(canonical_conjunctive(c), is_satisfiable(c))
                for c in workload]

    def run_disabled():
        with caching(None), prefilter(False):
            return run_all()

    def run_cached():
        cache = ConstraintCache()
        with caching(cache):
            result = run_all()
        return result, cache.counters()

    t_off, baseline = timed(run_disabled)
    t_on, (warm, counters) = timed(run_cached)
    assert [r for r, _ in baseline] == [r for r, _ in warm]
    assert [s for _, s in baseline] == [s for _, s in warm]
    hit_rate = counters["hits"] / max(
        1, counters["hits"] + counters["misses"])
    print(f"{'mode':>10} {'median (s)':>12}")
    print(f"{'disabled':>10} {t_off:>12.4f}")
    print(f"{'cached':>10} {t_on:>12.4f}")
    print(f"speedup {t_off / t_on:.1f}x; hit rate {hit_rate:.2f}; "
          f"{counters['simplex_saved']} simplex solves saved "
          f"(identical results in both modes)")


EXPERIMENTS = {
    "E7": experiment_e7,
    "E8": experiment_e8,
    "E9": experiment_e9,
    "E10": experiment_e10,
    "E11": experiment_e11,
    "E12": experiment_e12,
    "E13": experiment_e13,
    "E14": experiment_e14,
    "E15": experiment_e15,
    "E16": experiment_e16,
}


def main(argv: list[str]) -> None:
    wanted = [a.upper() for a in argv] or list(EXPERIMENTS)
    for name in wanted:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; choices: "
                  f"{', '.join(EXPERIMENTS)}")
            continue
        runner()


if __name__ == "__main__":
    main(sys.argv[1:])

"""E14 (extension) — "global economical filtering": bounding-box
filter-and-refine vs exact-only overlap joins.

The paper's related-work section faults spatial DBMS extensions for
lacking economical filtering; this ablation quantifies what the
classic two-phase scheme buys a constraint join."""

import pytest

from repro.constraints.filtering import overlap_join
from repro.constraints.geometry import box
from repro.constraints.terms import variables

x, y = variables("x y")


def scattered(n, seed=3):
    """n boxes scattered over an area that grows with n: density stays
    constant, so a few overlaps exist but most pairs are far apart."""
    import random
    rng = random.Random(seed)
    side = int((40 * n) ** 0.5) + 8
    items = []
    for i in range(n):
        cx = rng.randint(0, side)
        cy = rng.randint(0, side)
        items.append((i, box([x, y], [(cx, cx + 4), (cy, cy + 4)])))
    return items


SIZES = [8, 16, 32]


@pytest.mark.parametrize("n", SIZES)
def test_join_with_prefilter(benchmark, n):
    items = scattered(n)
    matches, stats = benchmark.pedantic(
        overlap_join, args=(items,), kwargs={"prefilter": True},
        rounds=3, iterations=1, warmup_rounds=1)
    assert stats.exact_tests <= stats.pairs_considered


@pytest.mark.parametrize("n", SIZES)
def test_join_without_prefilter(benchmark, n):
    items = scattered(n)
    matches, stats = benchmark.pedantic(
        overlap_join, args=(items,), kwargs={"prefilter": False},
        rounds=3, iterations=1, warmup_rounds=1)
    assert stats.exact_tests == stats.pairs_considered


def test_agreement_and_pruning():
    items = scattered(32)
    with_filter, stats_f = overlap_join(items, prefilter=True)
    without, stats_n = overlap_join(items, prefilter=False)
    assert sorted(with_filter) == sorted(without)
    # On scattered data the filter prunes the vast majority of pairs.
    assert stats_f.exact_tests < stats_n.exact_tests // 5

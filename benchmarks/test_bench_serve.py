"""ISSUE 9 / E22 — the query server under concurrent load.

Scenarios (all over one loop, server and clients in-process):

* ``mixed_cached`` — N clients sweep a small template pool in the
  same order (the dashboard regime: many clients asking the same few
  questions).  Concurrent identical requests collapse into shared
  executions, so aggregate throughput must *scale* with clients even
  though the solver work is GIL-serial: the acceptance criterion is
  >= 2x throughput at 16 clients vs 1.
* ``mixed_distinct`` — every client salts its own parameters, so far
  fewer requests collapse; the contrast column that shows where the
  scaling comes from.
* ``identical`` — every client repeats one expensive query; the
  dedup hit rate must be positive (it is in fact (N-1)/N).

Per-request latencies (p50/p99) and dedup counters are recorded for
every scenario; results are checked byte-identical to in-process
execution.  Numbers land in ``BENCH_serve.json`` at the repo root.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import pytest

from repro import lyric
from repro.client import connect
from repro.server import LyricServer, QueryService
from repro.workloads import office

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_serve.json"


def _merge(payload: dict) -> None:
    """Fold ``payload``'s top-level keys into BENCH_serve.json, so the
    throughput suite and the executor-mode suite can land results
    independently."""
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except ValueError:
            pass
    existing.update(payload)
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

CLIENT_COUNTS = (1, 4, 16, 64)
CALLS_PER_CLIENT = 12

#: The template pool: two solver-bound CST queries and two cheap
#: lookups, parameterized per request index.
TEMPLATES = [
    (office.PLACED_EXTENT_QUERY, ()),
    ("SELECT X FROM Office_Object X WHERE X.color = $col", ("col",)),
    ("""
        SELECT CO, ((u,v) | E and D and x = $px and y = $py)
        FROM Office_Object CO
        WHERE CO.extent[E] and CO.translation[D]
     """, ("px", "py")),
    ("SELECT O FROM Object_in_Room O WHERE O.inv_number = $inv",
     ("inv",)),
]

#: One expensive pairwise query for the identical-request scenario.
PAIRWISE = """
    SELECT A, B, ((u,v) | EA and DA and EB and DB)
    FROM Office_Object A, Office_Object B
    WHERE A.extent[EA] and A.translation[DA]
      and B.extent[EB] and B.translation[DB]
"""

_COLORS = ["red", "grey", "blue", "white"]


def call_for(i: int, client: int | None = None):
    """Request ``i`` of a sweep.  With ``client=None`` every client
    issues the identical call (the dedup-friendly regime); otherwise
    the bindings are salted per client and rarely collapse."""
    text, names = TEMPLATES[i % len(TEMPLATES)]
    salt = 0 if client is None else client
    pool = {"col": _COLORS[(i + salt) % len(_COLORS)],
            "px": (i * 3 + salt * 7) % 11,
            "py": (i * 5 + salt * 3) % 9,
            "inv": f"INV-{(i + salt) % 3:05d}"}
    return text, {n: pool[n] for n in names} or None


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run_scenario(db, n_clients: int, *, distinct: bool = False,
                 identical: bool = False,
                 executor: str = "thread") -> dict:
    async def main():
        service = QueryService(db, executor_threads=8,
                               executor=executor)
        server = LyricServer(service, port=0, max_sessions=256)
        await server.start()
        clients = [await connect(port=server.port)
                   for _ in range(n_clients)]

        # Steady state: one unmeasured sweep warms the plan and
        # constraint caches of THIS service equally for every N.
        for i in range(len(TEMPLATES)):
            text, params = call_for(i)
            await clients[0].query(text, params=params)
        await clients[0].query(PAIRWISE, translated=False)
        warm = await clients[0].stats()

        latencies: list[float] = []

        async def one_client(index: int, client) -> None:
            for i in range(CALLS_PER_CLIENT):
                if identical:
                    text, params = PAIRWISE, None
                else:
                    text, params = call_for(
                        i, client=index if distinct else None)
                begin = time.perf_counter()
                await client.query(
                    text, params=params,
                    translated=not identical)
                latencies.append(time.perf_counter() - begin)

        begin = time.perf_counter()
        await asyncio.gather(*[one_client(index, client)
                               for index, client
                               in enumerate(clients)])
        wall = time.perf_counter() - begin
        stats = await clients[0].stats()
        for client in clients:
            await client.close()
        await server.shutdown()

        requests = n_clients * CALLS_PER_CLIENT
        hits = stats["dedup_hits"] - warm["dedup_hits"]
        misses = stats["dedup_misses"] - warm["dedup_misses"]
        return {
            "executor": stats["executor"],
            "process_requests": stats["process_requests"]
            - warm["process_requests"],
            "process_fallbacks": stats["process_fallbacks"]
            - warm["process_fallbacks"],
            "clients": n_clients,
            "requests": requests,
            "wall_seconds": round(wall, 4),
            "throughput_rps": round(requests / wall, 2),
            "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
            "dedup_hits": hits,
            "dedup_misses": misses,
            "dedup_hit_rate": round(hits / max(1, hits + misses), 3),
        }
    return asyncio.run(main())


def rows_bytes(result) -> bytes:
    return "\n".join(
        sorted(f"{r.oid!r}|{r.values!r}" for r in result)
    ).encode()


def check_equivalence(db, executor: str = "thread") -> bool:
    """Every template's wire result matches in-process execution."""
    async def main():
        service = QueryService(db, executor_threads=2,
                               executor=executor)
        server = LyricServer(service, port=0)
        await server.start()
        client = await connect(port=server.port)
        remote = []
        for i in range(len(TEMPLATES)):
            text, params = call_for(i)
            remote.append((text, params,
                           await client.query(text, params=params)))
        await client.close()
        await server.shutdown()
        return remote
    for text, params, result in asyncio.run(main()):
        local = lyric.query_translated(db, text, params=params)
        if rows_bytes(result) != rows_bytes(local):
            return False
    return True


def test_serve_throughput_dedup_and_equivalence():
    db = office.generate(10, seed=0).db

    results_identical = check_equivalence(db)
    assert results_identical, \
        "server results diverged from in-process execution"

    mixed_cached = {n: run_scenario(db, n) for n in CLIENT_COUNTS}
    mixed_distinct = {16: run_scenario(db, 16, distinct=True)}
    identical = {16: run_scenario(db, 16, identical=True)}

    scaling = mixed_cached[16]["throughput_rps"] \
        / mixed_cached[1]["throughput_rps"]
    dedup_rate = identical[16]["dedup_hit_rate"]

    payload = {
        "experiment": "E22",
        "workload": {
            "database_objects": 10,
            "templates": len(TEMPLATES),
            "calls_per_client": CALLS_PER_CLIENT,
            "client_counts": list(CLIENT_COUNTS),
        },
        "scenarios": {
            "mixed_cached": {str(n): r
                             for n, r in mixed_cached.items()},
            "mixed_distinct": {str(n): r
                               for n, r in mixed_distinct.items()},
            "identical": {str(n): r for n, r in identical.items()},
        },
        "throughput_scaling_16_vs_1": round(scaling, 2),
        "dedup_hit_rate_identical": dedup_rate,
        "results_identical": results_identical,
    }
    _merge(payload)

    assert scaling >= 2.0, (
        f"aggregate throughput at 16 clients only {scaling:.2f}x the "
        f"single-client rate (acceptance floor: 2x; see {RESULT_PATH})")
    assert dedup_rate > 0, (
        "identical-query scenario produced no dedup hits "
        f"(see {RESULT_PATH})")


def test_serve_executor_modes():
    """ISSUE 10 / E23 — the process executor vs the thread executor on
    *distinct*-query load, where dedup cannot collapse work and the
    thread path is GIL-serial.  Results are verified byte-identical to
    in-process execution per mode; throughput for both modes is always
    recorded, and the >= 2x acceptance assert only applies on a
    multicore runner (on the 1–2 core case the pool cannot beat one
    interpreter, and the honest number says so)."""
    db = office.generate(10, seed=0).db

    identical = {mode: check_equivalence(db, executor=mode)
                 for mode in ("thread", "process")}
    assert identical["thread"] and identical["process"], \
        "an executor mode diverged from in-process execution"

    modes = {}
    for mode in ("thread", "process"):
        modes[mode] = {
            str(n): run_scenario(db, n, distinct=True, executor=mode)
            for n in (8, 16)}

    speedup = {
        str(n): round(
            modes["process"][str(n)]["throughput_rps"]
            / modes["thread"][str(n)]["throughput_rps"], 2)
        for n in (8, 16)}
    pool_served = modes["process"]["8"]["process_requests"]
    _merge({"executor_modes": {
        "scenario": "mixed_distinct",
        "calls_per_client": CALLS_PER_CLIENT,
        "cpu_count": os.cpu_count(),
        "thread": modes["thread"],
        "process": modes["process"],
        "process_vs_thread_speedup": speedup,
        "results_identical": True,
    }})

    if pool_served == 0:
        pytest.skip("process pool unavailable: thread fallback "
                    "measured, equivalence still asserted")
    if (os.cpu_count() or 1) < 4:
        pytest.skip("executor speedup acceptance needs a multicore "
                    f"runner (measured {speedup['8']}x at 8 clients; "
                    "recorded)")
    assert speedup["8"] >= 2.0, (
        f"process executor only {speedup['8']}x thread throughput at "
        f"8 distinct-query clients on {os.cpu_count()} cores "
        f"(see {RESULT_PATH})")

"""ISSUE 6 — durable-store restore and incremental index maintenance.

Two series land in ``BENCH_persist.json``:

* **Restore**: a 100k-row relation is persisted (80% in the snapshot,
  20% replayed from the WAL) and the store is reopened; recovery must
  replay the chain at a rate that makes a long-lived query server
  practical (rows/second recorded, plus a sanity floor).
* **Maintenance**: after each single-row append to an indexed
  relation, the box index is brought current once by *extension*
  (copy-on-extend from the cached index) and once by a full rebuild;
  the incremental path must win by at least 2x in total across the
  append burst (it is O(1) amortized per row against O(n) per
  rebuild).

Rows for the restore series are cheap ``LiteralOid`` pairs — the
series measures framing, checksumming, and replay, not ``parse_cst``.
"""

from __future__ import annotations

import json
import statistics
import time
from fractions import Fraction
from pathlib import Path

from repro.constraints.cst_object import CSTObject
from repro.constraints.parser import parse_cst
from repro.model.oid import LiteralOid
from repro.sqlc import index
from repro.storage import CLEAN, Store

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_persist.json"

RESTORE_ROWS = 100_000
SNAPSHOT_FRACTION = 0.8
BASE_ROWS = 2_000
APPENDS = 50
ROUNDS = 3


def _median_time(fn) -> tuple[float, object]:
    samples, result = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def _populate(store: Store) -> None:
    store.create_relation("big", ("k", "v"))
    relation = store.relation("big")
    snapshot_at = int(RESTORE_ROWS * SNAPSHOT_FRACTION)
    for i in range(RESTORE_ROWS):
        if i == snapshot_at:
            store.snapshot()
        relation.add_row((LiteralOid(Fraction(i)),
                          LiteralOid(Fraction(i % 997, 7))))


def _box_cst(i: int) -> CSTObject:
    lo, hi = i * 3, i * 3 + 2
    return parse_cst(
        f"((x,y) | {lo} <= x <= {hi} and 0 <= y <= {1 + i % 5})")


def test_restore_and_incremental_maintenance(tmp_path):
    # -- restore: snapshot + WAL replay of a 100k-row relation --------
    store_path = str(tmp_path / "bench-store")
    store = Store.create(store_path, durability="off")
    _populate(store)
    store.flush()
    store.close()

    def restore():
        with Store.open(store_path, readonly=True) as reopened:
            assert reopened.report.state == CLEAN
            return len(reopened.relation("big"))

    t_restore, restored_rows = _median_time(restore)
    assert restored_rows == RESTORE_ROWS
    rows_per_second = RESTORE_ROWS / t_restore
    # Sanity floor, far below any healthy run: a restore rate this low
    # would make persistent relations pointless.
    assert rows_per_second > 1_000

    # -- maintenance: incremental extension vs full rebuild -----------
    from repro.model.oid import CstOid
    from repro.sqlc.relation import ConstraintRelation

    base_cells = [(CstOid(_box_cst(i)),) for i in range(BASE_ROWS)]
    appended = [(CstOid(_box_cst(BASE_ROWS + j)),)
                for j in range(APPENDS)]

    def run_incremental():
        relation = ConstraintRelation("boxes", ("e",),
                                      list(base_cells))
        index.clear_index_cache()
        index.index_for(relation, "e", index.cst_cell_box)
        start = time.perf_counter()
        for row in appended:
            relation.add_row(row)
            index.index_for(relation, "e", index.cst_cell_box)
        return time.perf_counter() - start

    def run_rebuild():
        relation = ConstraintRelation("boxes", ("e",),
                                      list(base_cells))
        index.BoxIndex(relation, "e", index.cst_cell_box)
        start = time.perf_counter()
        for row in appended:
            relation.add_row(row)
            index.BoxIndex(relation, "e", index.cst_cell_box)
        return time.perf_counter() - start

    t_incremental = statistics.median(run_incremental()
                                      for _ in range(ROUNDS))
    t_rebuild = statistics.median(run_rebuild()
                                  for _ in range(ROUNDS))
    speedup = t_rebuild / t_incremental
    assert speedup >= 2.0, (
        f"incremental index maintenance only {speedup:.1f}x faster "
        f"than rebuild-per-append")

    payload = {
        "experiment": "E19",
        "restore": {
            "rows": RESTORE_ROWS,
            "snapshot_fraction": SNAPSHOT_FRACTION,
            "median_seconds": round(t_restore, 4),
            "rows_per_second": round(rows_per_second),
        },
        "maintenance": {
            "base_rows": BASE_ROWS,
            "appends": APPENDS,
            "median_seconds_incremental": round(t_incremental, 4),
            "median_seconds_rebuild": round(t_rebuild, 4),
            "speedup_incremental": round(speedup, 2),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

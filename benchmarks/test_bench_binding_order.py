"""E15 (extension) — binding order in the naive evaluator.

Section 5's formal semantics "considers all substitutions of oids for
variables"; joining skeleton paths as soon as their head is bound
(interleaved) produces the same bindings while pruning early.  This
ablation measures the gap on a two-variable query whose FROM product
is quadratic but whose skeleton is selective."""

import pytest

from repro.core.evaluator import evaluate
from conftest import office_workload

QUERY = """
    SELECT O, DSK, W FROM Object_in_Room O, Desk DSK, Drawer W
    WHERE O.catalog_object[DSK] and DSK.drawer[W]
"""

SIZES = [8, 16, 32]


@pytest.mark.parametrize("n", SIZES)
def test_interleaved_binding(benchmark, n):
    workload = office_workload(n)
    result = benchmark.pedantic(
        evaluate, args=(workload.db, QUERY),
        kwargs={"interleave": True},
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == (n + 1) // 2  # one row per desk


@pytest.mark.parametrize("n", SIZES)
def test_product_first_binding(benchmark, n):
    workload = office_workload(n)
    result = benchmark.pedantic(
        evaluate, args=(workload.db, QUERY),
        kwargs={"interleave": False},
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == (n + 1) // 2


def test_orders_agree():
    workload = office_workload(8)
    fast = evaluate(workload.db, QUERY, interleave=True)
    slow = evaluate(workload.db, QUERY, interleave=False)
    assert sorted(str(r.values) for r in fast) \
        == sorted(str(r.values) for r in slow)

"""E10 — Section 3.1: canonical-form simplification costs.

The paper's always-on simplifications (delete inconsistent disjuncts,
delete syntactic duplicates, cheap conjunction cleanup) vs the
optional LP-based redundant-atom removal; redundant *disjunct*
detection stays off (co-NP-complete per [Sri92])."""

import pytest

from repro.constraints.canonical import (
    canonical_conjunctive,
    canonical_disjunctive,
)
from repro.workloads.random_constraints import (
    random_dnf,
    redundant_conjunction,
)

DISJUNCTS = [4, 8, 16]


@pytest.mark.parametrize("k", DISJUNCTS)
def test_paper_simplifications(benchmark, k):
    """Drop unsat disjuncts + dedup, no per-atom redundancy pass."""
    dnf = random_dnf(3, k, 5, seed=k, infeasible_fraction=0.5)
    result = benchmark.pedantic(
        canonical_disjunctive, args=(dnf,),
        kwargs={"remove_redundant_atoms": False},
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) <= k


@pytest.mark.parametrize("k", DISJUNCTS)
def test_full_atom_redundancy(benchmark, k):
    """Additionally remove LP-redundant atoms inside each disjunct."""
    dnf = random_dnf(3, k, 5, seed=k, infeasible_fraction=0.5)
    result = benchmark.pedantic(
        canonical_disjunctive, args=(dnf,),
        kwargs={"remove_redundant_atoms": True},
        rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) <= k


def test_conjunction_redundancy(benchmark):
    conj = redundant_conjunction(4, 8, 8, seed=3)
    result = benchmark.pedantic(
        canonical_conjunctive, args=(conj,),
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) < len(conj)


def test_space_savings():
    """The size reduction the canonical form buys (reported by the
    harness): unsat disjuncts vanish, redundant atoms vanish."""
    dnf = random_dnf(3, 12, 5, seed=9, infeasible_fraction=0.5)
    cheap = canonical_disjunctive(dnf, remove_redundant_atoms=False)
    assert len(cheap) < len(dnf)
    conj = redundant_conjunction(4, 8, 8, seed=3)
    tight = canonical_conjunctive(conj)
    assert len(tight) <= len(conj) - 8

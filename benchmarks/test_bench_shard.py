"""ISSUE 8 — sharded scatter-gather execution benchmark.

Three scenarios land in ``BENCH_shard.json`` at the repository root:

* **scattered** (the acceptance workload): two relations of 50k small
  boxes each (130k rows total after mutation bursts) scattered over a
  wide 1-D domain, joined on constraint intersection.  Each timed
  round first applies a 2x5k-row mutation burst, then runs the join.
  The unsharded baseline pays copy-on-extend index maintenance and a
  full endpoint re-sort inside the query; the sharded relation paid
  per-shard maintenance at ingest (timed separately and reported as
  ``maintenance_seconds_per_burst``), prunes most shard pairs by
  envelope disjointness, and probes the survivors through per-shard
  indexes small enough for the vectorized overlap path.  Acceptance:
  >= 3x median speedup, byte-identical rows, nonzero
  ``shard_pairs_pruned``.
* **dense**: heavily overlapping boxes where envelopes cannot prune —
  recorded for honesty (no speedup threshold; the interesting claim is
  that results stay identical when pruning never fires).
* **worker_pool**: dispatch overhead of the persistent pool.  A warm
  dispatch must beat the fork-per-query legacy transport; the cold
  start (pool creation) is recorded alongside.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.constraints.cst_object import CSTObject
from repro.constraints.satisfiability import is_satisfiable
from repro.model.oid import LiteralOid
from repro.runtime import parallel
from repro.runtime.cache import caching
from repro.runtime.context import QueryContext
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    Scan,
    ShardedIndexJoin,
)
from repro.sqlc.engine import execute
from repro.sqlc.relation import ConstraintRelation
from repro.sqlc.shard import ShardedConstraintRelation
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_shard.json"

# Scattered (acceptance) workload: 100k base rows + 3 bursts of 10k.
N_SIDE = 50_000
SHARDS = 64
SPREAD = 30_000_000
SIZE = 20
BURST = 5_000
ROUNDS = 3

# Dense workload: overlapping boxes, envelopes cannot prune.
N_DENSE = 1_000
DENSE_SHARDS = 8
DENSE_SPREAD = 8_000
DENSE_SIZE = 40

_VARS = make_variables(1)


def _sat_intersection(a, b):
    # Conjoin + satisfiability, not CSTObject.intersect: the exact
    # phase needs a yes/no, and it is identical work on both sides of
    # every comparison here.
    return is_satisfiable(a.cst.constraint.conjoin(b.cst.constraint))


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _box_rows(count, seed, spread, size, base=0):
    # canonicalize=False: scattered_boxes emits already-simple bound
    # atoms, and both sides of every comparison share the objects, so
    # canonicalization would only add identical constant cost.
    return [(LiteralOid(base + i),
             CSTObject(_VARS, c, canonicalize=False))
            for i, c in enumerate(
                scattered_boxes(count, seed=seed, spread=spread,
                                size=size))]


def _plain_plan():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box, index.cst_cell_box,
                     _predicate())


def _sharded_plan():
    return ShardedIndexJoin(
        Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
        "e", "f", index.cst_cell_box, index.cst_cell_box, _predicate())


def _rows(relation) -> list:
    return [tuple(map(repr, row)) for row in relation]


def _median(samples) -> float:
    return statistics.median(samples)


def _record(section: str, payload: dict) -> None:
    """Merge one scenario's numbers into BENCH_shard.json."""
    existing = {"experiment": "E21"}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except ValueError:
            pass
    existing["experiment"] = "E21"
    existing[section] = payload
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def test_scattered_burst_join_speedup():
    left_rows = _box_rows(N_SIDE, seed=11, spread=SPREAD, size=SIZE)
    right_rows = _box_rows(N_SIDE, seed=13, spread=SPREAD, size=SIZE)
    bursts = [
        (_box_rows(BURST, seed=100 + r, spread=SPREAD, size=SIZE,
                   base=N_SIDE + r * BURST),
         _box_rows(BURST, seed=200 + r, spread=SPREAD, size=SIZE,
                   base=N_SIDE + r * BURST))
        for r in range(ROUNDS)]

    plain = {
        "L": ConstraintRelation("L", ("lid", "e"), left_rows),
        "R": ConstraintRelation("R", ("rid", "f"), right_rows),
    }
    start = time.perf_counter()
    sl = ShardedConstraintRelation("L", ("lid", "e"), left_rows,
                                   shards=SHARDS, partition_by="e")
    sr = ShardedConstraintRelation("R", ("rid", "f"), right_rows,
                                   shards=SHARDS, partition_by="f")
    sl.register_index("e", index.cst_cell_box)
    sr.register_index("f", index.cst_cell_box)
    ingest_seconds = time.perf_counter() - start
    sharded = {"L": sl, "R": sr}

    index.clear_index_cache()
    with caching(None):
        # Warm-up: build both sides' indexes once; every timed round
        # then measures incremental maintenance, not a cold build.
        baseline = _rows(execute(_plain_plan(), plain,
                                 use_optimizer=False,
                                 ctx=QueryContext()))
        warm = _rows(execute(_sharded_plan(), sharded,
                             use_optimizer=False, ctx=QueryContext()))
        assert warm == baseline

        unsharded_times, sharded_times, maintenance_times = [], [], []
        pruned = probed = 0
        result_rows = 0
        for left_burst, right_burst in bursts:
            plain["L"].add_rows(left_burst)
            plain["R"].add_rows(right_burst)
            start = time.perf_counter()
            sl.add_rows(left_burst)
            sr.add_rows(right_burst)
            maintenance_times.append(time.perf_counter() - start)

            start = time.perf_counter()
            base = _rows(execute(_plain_plan(), plain,
                                 use_optimizer=False,
                                 ctx=QueryContext()))
            unsharded_times.append(time.perf_counter() - start)

            ctx = QueryContext()
            start = time.perf_counter()
            result = _rows(execute(_sharded_plan(), sharded,
                                   use_optimizer=False, ctx=ctx))
            sharded_times.append(time.perf_counter() - start)

            assert result == base
            pruned = ctx.stats.shard_pairs_pruned
            probed = ctx.stats.shard_pairs_probed
            result_rows = len(result)

    t_unsharded = _median(unsharded_times)
    t_sharded = _median(sharded_times)
    speedup = t_unsharded / t_sharded
    _record("scattered", {
        "workload": {
            "left_rows": len(list(plain["L"])),
            "right_rows": len(list(plain["R"])),
            "shards": SHARDS,
            "spread": SPREAD,
            "box_size": SIZE,
            "burst_rows_per_round": 2 * BURST,
            "rounds": ROUNDS,
            "result_rows": result_rows,
        },
        "ingest_seconds_sharded": round(ingest_seconds, 4),
        "maintenance_seconds_per_burst": round(
            _median(maintenance_times), 4),
        "median_seconds_unsharded": round(t_unsharded, 4),
        "median_seconds_sharded": round(t_sharded, 4),
        "speedup_sharded": round(speedup, 2),
        "shard_pairs_total": SHARDS * SHARDS,
        "shard_pairs_pruned": pruned,
        "shard_pairs_probed": probed,
        "results_identical": True,
    })

    assert speedup >= 3.0, (
        f"sharded scatter-gather speedup {speedup:.2f}x below the 3x "
        f"acceptance threshold (see {RESULT_PATH})")
    assert pruned > 0, "envelope pruning never fired on the scattered workload"


def test_dense_join_stays_identical():
    left_rows = _box_rows(N_DENSE, seed=31, spread=DENSE_SPREAD,
                          size=DENSE_SIZE)
    right_rows = _box_rows(N_DENSE, seed=37, spread=DENSE_SPREAD,
                           size=DENSE_SIZE)
    plain = {
        "L": ConstraintRelation("L", ("lid", "e"), left_rows),
        "R": ConstraintRelation("R", ("rid", "f"), right_rows),
    }
    sharded = {
        "L": ShardedConstraintRelation("L", ("lid", "e"), left_rows,
                                       shards=DENSE_SHARDS,
                                       partition_by="e"),
        "R": ShardedConstraintRelation("R", ("rid", "f"), right_rows,
                                       shards=DENSE_SHARDS,
                                       partition_by="f"),
    }

    unsharded_times, sharded_times = [], []
    pruned = probed = 0
    baseline = result = None
    with caching(None):
        for _ in range(ROUNDS):
            index.clear_index_cache()
            start = time.perf_counter()
            baseline = _rows(execute(_plain_plan(), plain,
                                     use_optimizer=False,
                                     ctx=QueryContext()))
            unsharded_times.append(time.perf_counter() - start)

            index.clear_index_cache()
            ctx = QueryContext()
            start = time.perf_counter()
            result = _rows(execute(_sharded_plan(), sharded,
                                   use_optimizer=False, ctx=ctx))
            sharded_times.append(time.perf_counter() - start)
            pruned = ctx.stats.shard_pairs_pruned
            probed = ctx.stats.shard_pairs_probed

    assert result == baseline
    t_unsharded = _median(unsharded_times)
    t_sharded = _median(sharded_times)
    _record("dense", {
        "workload": {
            "left_rows": N_DENSE,
            "right_rows": N_DENSE,
            "shards": DENSE_SHARDS,
            "spread": DENSE_SPREAD,
            "box_size": DENSE_SIZE,
            "result_rows": len(baseline),
        },
        "median_seconds_unsharded": round(t_unsharded, 4),
        "median_seconds_sharded": round(t_sharded, 4),
        "speedup_sharded": round(t_unsharded / t_sharded, 2),
        "shard_pairs_pruned": pruned,
        "shard_pairs_probed": probed,
        "results_identical": True,
    })


# Module-level predicate: pickles by reference, so filter_rows takes
# the persistent-pool transport.
def _one_in_seven(row):
    return row["a"] % 7 == 0


def test_warm_pool_dispatch_beats_fork_per_query():
    rows = [(i,) for i in range(4_000)]
    columns = ("a",)
    expected = [row for row in rows if row[0] % 7 == 0]

    bound = 7

    def closure(row):
        # A closure cannot pickle, so this forces the legacy
        # fork-per-query transport.
        return row["a"] % bound == 0

    parallel.reset_stats()
    parallel.shutdown_pool()
    try:
        with parallel.parallelism(2):
            fork_times = []
            for _ in range(ROUNDS):
                start = time.perf_counter()
                kept = parallel.filter_rows(columns, rows, closure)
                fork_times.append(time.perf_counter() - start)
                assert kept == expected
            if parallel.stats()["fallbacks"]:
                import pytest
                pytest.skip("process pool unavailable on this runner")

            start = time.perf_counter()
            kept = parallel.filter_rows(columns, rows, _one_in_seven)
            cold_seconds = time.perf_counter() - start
            assert kept == expected

            warm_times = []
            for _ in range(ROUNDS):
                start = time.perf_counter()
                kept = parallel.filter_rows(columns, rows,
                                            _one_in_seven)
                warm_times.append(time.perf_counter() - start)
                assert kept == expected
        stats = parallel.stats()
    finally:
        parallel.shutdown_pool()

    t_fork = _median(fork_times)
    t_warm = _median(warm_times)
    _record("worker_pool", {
        "rows": len(rows),
        "workers": 2,
        "median_seconds_fork_per_query": round(t_fork, 4),
        "cold_start_seconds": round(cold_seconds, 4),
        "median_seconds_warm_dispatch": round(t_warm, 4),
        "warm_vs_fork_speedup": round(t_fork / t_warm, 2),
        "pool_dispatches": stats["pool_dispatches"],
        "pool_cold_starts": stats["pool_cold_starts"],
    })

    assert stats["pool_cold_starts"] == 1
    assert t_warm < t_fork, (
        f"warm pool dispatch ({t_warm:.4f}s) should undercut "
        f"fork-per-query startup ({t_fork:.4f}s)")

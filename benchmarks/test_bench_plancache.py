"""ISSUE 7 — compiled-plan cache on a repeated-small-query workload.

The acceptance benchmark: the query-server shape (many executions of a
small set of query templates, parameter bindings varying per call) must
run at least 5x faster with the plan cache on than with it off
(``plan_cache=None``, i.e. ``--no-plan-cache``), with byte-identical
results.  The templates are wide multi-join queries over a small
database — the prepared-statement regime, where compilation
(translation plus the full rewrite pipeline) dominates execution.  The
measured numbers are written to ``BENCH_plancache.json`` at the
repository root.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro import lyric
from repro.runtime.context import ExecutionStats, QueryContext
from repro.runtime.plancache import PlanCache
from repro.workloads import office

RESULT_PATH = Path(__file__).resolve().parents[1] \
    / "BENCH_plancache.json"

#: Query templates (text, parameter names): wide joins with several
#: predicates each, so the compile half is the dominant cost on a
#: small database.
TEMPLATES = [
    ("""
        SELECT A, B, O
        FROM Office_Object A, Office_Object B, Object_in_Room O
        WHERE A.color = $col and B.color = A.color
          and A.name = B.name and O.catalog_object[A]
          and A.extent[E] and B.extent[F] and O.inv_number = $inv
     """, ("col", "inv")),
    ("""
        SELECT X, C, DX, DC
        FROM Desk X, File_Cabinet C, Drawer DX, Drawer DC
        WHERE X.drawer[DX] and C.drawer[DC] and DX.color = DC.color
          and X.color = $col and C.extent[E] and X.extent[F]
     """, ("col",)),
    ("""
        SELECT O, P
        FROM Object_in_Room O, Object_in_Room P, Office_Object A
        WHERE O.catalog_object[A] and P.catalog_object[A]
          and O.location[L] and P.location[M] and A.translation[D]
          and O.inv_number = $inv
     """, ("inv",)),
    ("""
        SELECT A, D2
        FROM Office_Object A, Drawer D2, Object_in_Room O
        WHERE A.drawer[D2] and D2.color = $col
          and O.catalog_object[A] and O.location[L]
          and A.extent[E] and A.cat_number = $cat
     """, ("col", "cat")),
]

#: How many times the template set is swept per measured run.
SWEEPS = 8
ROUNDS = 3

_COLORS = ["red", "grey", "blue", "white"]


def _calls():
    """The workload: every template, ``SWEEPS`` times, bindings varying
    per call so no two consecutive calls are identical requests."""
    calls = []
    for sweep in range(SWEEPS):
        for text, names in TEMPLATES:
            pool = {"col": _COLORS[sweep % len(_COLORS)],
                    "inv": f"INV-{sweep % 2:05d}",
                    "cat": f"CAT-{sweep % 2:04d}"}
            params = {n: pool[n] for n in names} or None
            calls.append((text, params))
    return calls


def _run_workload(db, calls, cache):
    ctx = QueryContext(stats=ExecutionStats(), plan_cache=cache)
    rows = []
    for text, params in calls:
        result = lyric.query_translated(db, text, ctx=ctx,
                                        params=params)
        rows.append(sorted(f"{r.oid!r}|{r.values!r}" for r in result))
    return rows, ctx.stats


def _median_time(fn) -> tuple[float, object]:
    samples, result = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def test_plan_cache_speedup_and_equivalence():
    db = office.generate(2, seed=0).db
    calls = _calls()
    # One warm-up sweep so the (shared) constraint cache is equally
    # warm in both measured modes.
    _run_workload(db, calls, None)

    t_off, (baseline, stats_off) = _median_time(
        lambda: _run_workload(db, calls, None))

    # Repeat-query throughput is steady state: one unmeasured sweep
    # pays the compile misses, the measured sweeps are all hits.
    cache = PlanCache()
    _run_workload(db, calls, cache)
    t_on, (cached, stats_on) = _median_time(
        lambda: _run_workload(db, calls, cache))
    counters = cache.counters()

    # Byte-identical results between the modes.
    assert json.dumps(baseline).encode() == json.dumps(cached).encode()
    # Off means off: not a single lookup happened.
    assert stats_off.plan_cache_hits == 0
    assert stats_off.plan_cache_misses == 0
    # On: one compile per (template, options) shape, all else hits.
    assert counters["misses"] == len(TEMPLATES)
    assert counters["hits"] \
        == (ROUNDS + 1) * len(calls) - len(TEMPLATES)

    speedup = t_off / t_on
    hit_rate = counters["hits"] / max(
        1, counters["hits"] + counters["misses"])
    per_query_off = t_off / len(calls)
    per_query_on = t_on / len(calls)
    payload = {
        "experiment": "E20",
        "workload": {
            "templates": len(TEMPLATES),
            "sweeps": SWEEPS,
            "total_queries": len(calls),
        },
        "median_seconds_disabled": round(t_off, 4),
        "median_seconds_cached": round(t_on, 4),
        "per_query_ms_disabled": round(per_query_off * 1000, 3),
        "per_query_ms_cached": round(per_query_on * 1000, 3),
        "speedup": round(speedup, 2),
        "hit_rate": round(hit_rate, 3),
        "plan_cache_hits": counters["hits"],
        "plan_cache_misses": counters["misses"],
        "compile_seconds_saved": round(counters["compile_saved"], 4),
        "results_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= 5.0, (
        f"plan-cache speedup {speedup:.2f}x below the 5x acceptance "
        f"threshold (see {RESULT_PATH})")


def test_warm_cache_serves_every_repeat():
    """After the first sweep, every call is a hit — and the analyze
    trace confirms a hit replays zero compile phases."""
    db = office.generate(2, seed=1).db
    cache = PlanCache()
    calls = _calls()
    _run_workload(db, calls, cache)
    warm_hits = cache.hits
    rows, stats = _run_workload(db, calls, cache)
    assert cache.hits - warm_hits == len(calls)
    names = {r.name for r in stats.phases}
    assert "translate" not in names
    assert "physical-plan" not in names


def test_parameter_bindings_share_one_plan():
    """Distinct bindings of the same template are all served by the
    single compiled plan, and each matches a fresh compile."""
    db = office.generate(3, seed=2).db
    text, names = TEMPLATES[0]
    cache = PlanCache()
    for sweep in range(4):
        params = {"col": _COLORS[sweep], "inv": "INV-00000"}
        cached, _ = _run_workload(db, [(text, params)], cache)
        fresh, _ = _run_workload(db, [(text, params)], None)
        assert cached == fresh
    assert cache.misses == 1
    assert cache.hits == 3

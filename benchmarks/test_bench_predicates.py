"""E12 — WHERE-clause constraint predicates: satisfiability and
entailment cost vs system size (atoms) and disjunct count.

Entailment against a k-disjunct right side expands a DNF product whose
size depends on the *query* constraint only — the paper's data-
complexity argument; the series shows the k-dependence."""

import pytest

from repro.constraints.implication import (
    conjunctive_entails_conjunctive,
    conjunctive_entails_disjunction,
)
from repro.constraints.satisfiability import is_satisfiable
from repro.workloads.random_constraints import (
    random_dnf,
    random_polytope,
)

ATOMS = [8, 16, 32]


@pytest.mark.parametrize("atoms", ATOMS)
def test_satisfiability(benchmark, atoms):
    poly = random_polytope(5, atoms, seed=atoms)
    assert benchmark.pedantic(
        is_satisfiable, args=(poly,),
        rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("atoms", ATOMS)
def test_conjunctive_entailment(benchmark, atoms):
    inner = random_polytope(5, atoms, seed=atoms)
    outer = random_polytope(5, max(2, atoms // 4), seed=atoms + 1)
    benchmark.pedantic(
        conjunctive_entails_conjunctive, args=(inner, outer),
        rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("disjuncts", [2, 4, 8])
def test_disjunctive_entailment(benchmark, disjuncts):
    lhs = random_polytope(3, 6, seed=disjuncts)
    rhs = random_dnf(3, disjuncts, 3, seed=disjuncts + 10)
    benchmark.pedantic(
        conjunctive_entails_disjunction,
        args=(lhs, list(rhs.disjuncts)),
        rounds=1, iterations=1, warmup_rounds=0)

"""E9 — Section 3.1 design rationale: restricted projection is cheap
per step, while full quantifier elimination can blow up.

"This would not be the case, for example, had we required quantifier
elimination even of conjunctions of linear constraints" — on dense
systems (every atom couples every variable) one restricted step grows
the system mildly, while eliminating all-but-one variable exhibits the
classical Fourier-Motzkin explosion.  The harness also reports the
intermediate atom counts."""

import pytest

from repro.constraints.projection import (
    eliminate_variable,
    project_conjunctive,
    prune_syntactic,
)
from repro.workloads.random_constraints import (
    dense_system,
    make_variables,
)

SINGLE_DIMS = [4, 5, 6, 7]
# Full elimination on dense dimension-6 systems is already intractable
# (the point of the experiment); benchmark up to 5.
FULL_DIMS = [3, 4, 5]


@pytest.mark.parametrize("dim", SINGLE_DIMS)
def test_restricted_single_step(benchmark, dim):
    """One restricted projection application: eliminate one variable."""
    system = dense_system(dim, seed=42)
    victim = make_variables(dim)[0]
    result = benchmark.pedantic(
        eliminate_variable, args=(system, victim),
        rounds=3, iterations=1, warmup_rounds=1)
    assert victim not in result.variables


@pytest.mark.parametrize("dim", FULL_DIMS)
def test_full_elimination_keep_one(benchmark, dim):
    """Full quantifier elimination down to a single free variable —
    the operation the paper's families deliberately avoid."""
    system = dense_system(dim, seed=42)
    keep = make_variables(dim)[-1:]
    result = benchmark.pedantic(
        project_conjunctive, args=(system, keep),
        rounds=1, iterations=1, warmup_rounds=0)
    assert result.variables <= set(keep)


def intermediate_sizes(dim: int, seed: int = 42,
                       cap: int = 50_000) -> list[int]:
    """Atom counts after each successive elimination step."""
    system = dense_system(dim, seed=seed)
    sizes = [len(system)]
    for var in make_variables(dim)[:-1]:
        system = prune_syntactic(eliminate_variable(system, var))
        sizes.append(len(system))
        if len(system) > cap:
            break
    return sizes


def test_blowup_shape():
    """The measured claim: one step grows the system by at most a
    quadratic factor, while successive steps compound into an
    explosion (dim 5 dense systems already exceed 1000 atoms
    mid-elimination from 10 input atoms)."""
    sizes4 = intermediate_sizes(4)
    sizes5 = intermediate_sizes(5)
    # Single-step growth is bounded (FM: (m/2)^2 worst case).
    assert sizes4[1] <= (sizes4[0] ** 2) // 2
    # Compounded growth explodes.
    assert max(sizes5) > 100 * sizes5[0]

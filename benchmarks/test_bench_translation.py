"""E8 — the naive object-level evaluator vs the Section 5 translation
to flat SQL with constraints (optimized and unoptimized plans).

Same answers are asserted; relative cost is the measurement."""

import pytest

from repro import lyric
from repro.workloads import office
from conftest import office_workload

N = 32


def test_naive_evaluator(benchmark):
    workload = office_workload(N)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db, office.PLACED_EXTENT_QUERY),
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == N


def test_translated_optimized(benchmark):
    workload = office_workload(N)
    result = benchmark.pedantic(
        lyric.query_translated,
        args=(workload.db, office.PLACED_EXTENT_QUERY),
        kwargs={"use_optimizer": True},
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == N


def test_translated_unoptimized(benchmark):
    workload = office_workload(N)
    result = benchmark.pedantic(
        lyric.query_translated,
        args=(workload.db, office.PLACED_EXTENT_QUERY),
        kwargs={"use_optimizer": False},
        rounds=3, iterations=1, warmup_rounds=1)
    assert len(result) == N


def test_agreement():
    """Not a timing: the differential guarantee behind E8."""
    workload = office_workload(8)
    naive = lyric.query(workload.db, office.PLACED_EXTENT_QUERY)
    translated = lyric.query_translated(workload.db,
                                        office.PLACED_EXTENT_QUERY)
    assert sorted(str(r.values) for r in naive) \
        == sorted(str(r.values) for r in translated)

"""ISSUE 3 — box-index join acceleration on a sparse-join workload.

The acceptance benchmark: joining two relations of small scattered CST
boxes on constraint intersection must run at least 3x faster through
the box index (sort+sweep candidate generation, then exact simplex
intersection on the survivors) than through the nested-loop
Select-over-cross-join, with zero result differences and fewer than
half of all |R|x|S| pairs surviving to the exact phase.  The
indexed+parallel configuration is *recorded* but carries no speedup
threshold — CI runners (and this container) may expose a single core,
where partitioned execution cannot win wall-clock.  Numbers land in
``BENCH_index.json`` at the repository root.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

from repro.constraints.cst_object import CSTObject
from repro.constraints.satisfiability import is_satisfiable
from repro.model.oid import LiteralOid
from repro.runtime import parallel
from repro.runtime.cache import caching
from repro.sqlc import index
from repro.sqlc.algebra import (
    CstPredicate,
    IndexJoin,
    NaturalJoin,
    Scan,
    Select,
)
from repro.sqlc.engine import ExecutionStats, execute
from repro.sqlc.relation import ConstraintRelation
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_index.json"

N_LEFT = 100
N_RIGHT = 100
SPREAD = 2000
SIZE = 5
ROUNDS = 3


def _sat_intersection(a, b):
    # Conjoin + satisfiability, not CSTObject.intersect: the join
    # predicate only needs a yes/no, and skipping the intersection's
    # canonicalization keeps the exact phase proportional to the
    # simplex work the index actually saves.
    return is_satisfiable(a.cst.constraint.conjoin(b.cst.constraint))


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _catalog():
    vars_ = make_variables(1)
    lefts = scattered_boxes(N_LEFT, seed=11, spread=SPREAD, size=SIZE)
    rights = scattered_boxes(N_RIGHT, seed=13, spread=SPREAD, size=SIZE)
    left = ConstraintRelation("L", ("lid", "e"), [
        (LiteralOid(i), CSTObject(vars_, c))
        for i, c in enumerate(lefts)])
    right = ConstraintRelation("R", ("rid", "f"), [
        (LiteralOid(i), CSTObject(vars_, c))
        for i, c in enumerate(rights)])
    return {"L": left, "R": right}


def _nested_loop_plan():
    return Select(NaturalJoin(Scan("L", ("lid", "e")),
                              Scan("R", ("rid", "f"))),
                  _predicate())


def _index_join_plan():
    return IndexJoin(Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
                     "e", "f", index.cst_cell_box, index.cst_cell_box,
                     _predicate())


def _median_time(fn) -> tuple[float, object]:
    samples, result = [], None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples), result


def _rows(relation) -> list:
    return [tuple(map(repr, row)) for row in relation]


def test_index_join_speedup_and_equivalence():
    catalog = _catalog()
    total_pairs = N_LEFT * N_RIGHT

    def run_nested():
        with caching(None):
            return _rows(execute(_nested_loop_plan(), catalog,
                                 use_optimizer=False))

    indexed_stats = ExecutionStats()

    def run_indexed():
        # Rebuild the index every round: build cost is part of the
        # honest indexed timing.
        index.clear_index_cache()
        with caching(None):
            return _rows(execute(_index_join_plan(), catalog,
                                 use_optimizer=False,
                                 stats=indexed_stats))

    parallel_stats = ExecutionStats()

    def run_parallel():
        index.clear_index_cache()
        with caching(None), parallel.parallelism(2):
            return _rows(execute(_index_join_plan(), catalog,
                                 use_optimizer=False,
                                 stats=parallel_stats))

    t_nested, baseline = _median_time(run_nested)
    t_indexed, indexed = _median_time(run_indexed)
    t_parallel, fanned = _median_time(run_parallel)

    assert indexed == baseline
    assert fanned == baseline

    candidates = total_pairs - indexed_stats.candidates_pruned
    candidate_fraction = candidates / total_pairs
    speedup_indexed = t_nested / t_indexed
    payload = {
        "experiment": "E17",
        "workload": {
            "left_rows": N_LEFT,
            "right_rows": N_RIGHT,
            "total_pairs": total_pairs,
            "spread": SPREAD,
            "box_size": SIZE,
            "result_rows": len(baseline),
        },
        "median_seconds_nested_loop": round(t_nested, 4),
        "median_seconds_indexed": round(t_indexed, 4),
        "median_seconds_indexed_parallel": round(t_parallel, 4),
        "speedup_indexed": round(speedup_indexed, 2),
        "speedup_indexed_parallel": round(t_nested / t_parallel, 2),
        "index_probes": indexed_stats.index_probes,
        "candidates": candidates,
        "candidates_pruned": indexed_stats.candidates_pruned,
        "candidate_fraction": round(candidate_fraction, 4),
        "parallel_partitions": parallel_stats.partitions,
        "parallel_workers": parallel_stats.workers,
        "results_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup_indexed >= 3.0, (
        f"box-index speedup {speedup_indexed:.2f}x below the 3x "
        f"acceptance threshold (see {RESULT_PATH})")
    assert candidate_fraction < 0.5, (
        f"exact phase saw {candidate_fraction:.1%} of all pairs; the "
        f"index should prune more than half on this sparse workload")

"""ISSUE 10 / E23 — shard-parallel scatter-gather: concurrent vs
serial shard-pair probes on the 130k-row scattered workload.

The probe phase of a sharded join (envelope pruning + per-shard index
probes) spends no guard budget, so dispatching surviving shard pairs
to pool workers must return the byte-identical candidate list the
serial loop produces — that equivalence is asserted unconditionally.
The *speedup* is a multicore claim: per-pair dispatch pays a pickle of
both shard indexes, so on the 1–2 core runners this suite also runs on
the honest number is at or below 1x, and the acceptance assert is
gated on core count (the measurement is recorded either way).

Numbers land in ``BENCH_shardpar.json`` at the repository root:

* **probe_phase** — median seconds for serial vs concurrent probes of
  the same surviving shard pairs, identical pair lists asserted per
  round, ``shard_pairs_parallel`` / pool dispatch counters recorded.
* **full_join** — one end-to-end sharded join per mode, rows asserted
  byte-identical.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from repro.constraints.cst_object import CSTObject
from repro.constraints.satisfiability import is_satisfiable
from repro.model.oid import LiteralOid
from repro.runtime import parallel
from repro.runtime.cache import caching
from repro.runtime.context import QueryContext
from repro.sqlc import index
from repro.sqlc.algebra import CstPredicate, Scan, ShardedIndexJoin
from repro.sqlc.engine import execute
from repro.sqlc.shard import ShardedConstraintRelation, scatter_pairs
from repro.workloads.random_constraints import (
    make_variables,
    scattered_boxes,
)

RESULT_PATH = Path(__file__).resolve().parents[1] \
    / "BENCH_shardpar.json"

# The E21 scattered workload: 100k base rows + 3 bursts of 10k.
N_SIDE = 50_000
SHARDS = 16
SPREAD = 30_000_000
SIZE = 20
BURST = 5_000
ROUNDS = 3
WORKERS = max(2, min(8, os.cpu_count() or 2))

_VARS = make_variables(1)


def _sat_intersection(a, b):
    return is_satisfiable(a.cst.constraint.conjoin(b.cst.constraint))


def _predicate():
    return CstPredicate(
        ("e", "f"), _sat_intersection, "SAT",
        (("e", index.cst_cell_box), ("f", index.cst_cell_box)))


def _box_rows(count, seed, spread, size, base=0):
    return [(LiteralOid(base + i),
             CSTObject(_VARS, c, canonicalize=False))
            for i, c in enumerate(
                scattered_boxes(count, seed=seed, spread=spread,
                                size=size))]


def _sharded_plan(workers=None):
    return ShardedIndexJoin(
        Scan("L", ("lid", "e")), Scan("R", ("rid", "f")),
        "e", "f", index.cst_cell_box, index.cst_cell_box,
        _predicate(), workers=workers)


def _rows(relation) -> list:
    return [tuple(map(repr, row)) for row in relation]


def _median(samples) -> float:
    return statistics.median(samples)


def _record(section: str, payload: dict) -> None:
    existing = {}
    if RESULT_PATH.exists():
        try:
            existing = json.loads(RESULT_PATH.read_text())
        except ValueError:
            pass
    existing["experiment"] = "E23"
    existing[section] = payload
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")


def _build_catalog():
    """The scattered 130k-row sharded catalog, bursts applied."""
    sl = ShardedConstraintRelation(
        "L", ("lid", "e"),
        _box_rows(N_SIDE, seed=11, spread=SPREAD, size=SIZE),
        shards=SHARDS, partition_by="e")
    sr = ShardedConstraintRelation(
        "R", ("rid", "f"),
        _box_rows(N_SIDE, seed=13, spread=SPREAD, size=SIZE),
        shards=SHARDS, partition_by="f")
    sl.register_index("e", index.cst_cell_box)
    sr.register_index("f", index.cst_cell_box)
    for r in range(ROUNDS):
        sl.add_rows(_box_rows(BURST, seed=100 + r, spread=SPREAD,
                              size=SIZE, base=N_SIDE + r * BURST))
        sr.add_rows(_box_rows(BURST, seed=200 + r, spread=SPREAD,
                              size=SIZE, base=N_SIDE + r * BURST))
    return sl, sr


def test_concurrent_probes_match_serial_and_record_speedup():
    sl, sr = _build_catalog()
    parallel.reset_stats()
    parallel.shutdown_pool()
    try:
        parallel.warm(WORKERS)  # keep the cold fork out of the timings

        serial_times, parallel_times = [], []
        probed = parallel_probed = 0
        pairs_serial = pairs_parallel = None
        for _ in range(ROUNDS):
            ctx = QueryContext()
            start = time.perf_counter()
            pairs_serial, info = scatter_pairs(
                sl, sr, "e", "f", index.cst_cell_box,
                index.cst_cell_box, ctx=ctx)
            serial_times.append(time.perf_counter() - start)
            assert info["shard_pairs_parallel"] == 0
            probed = info["shard_pairs_probed"]

            ctx = QueryContext()
            start = time.perf_counter()
            pairs_parallel, info = scatter_pairs(
                sl, sr, "e", "f", index.cst_cell_box,
                index.cst_cell_box, ctx=ctx, workers=WORKERS)
            parallel_times.append(time.perf_counter() - start)
            parallel_probed = info["shard_pairs_parallel"]

            # The headline invariant: byte-identical candidates.
            assert pairs_parallel == pairs_serial

        pool_stats = parallel.stats()
    finally:
        parallel.shutdown_pool()

    t_serial = _median(serial_times)
    t_parallel = _median(parallel_times)
    speedup = t_serial / t_parallel
    dispatched = pool_stats["scatters"] > 0
    _record("probe_phase", {
        "workload": {
            "rows_per_side": N_SIDE + ROUNDS * BURST,
            "shards": SHARDS,
            "spread": SPREAD,
            "box_size": SIZE,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
        },
        "shard_pairs_probed": probed,
        "shard_pairs_parallel": parallel_probed,
        "candidate_pairs": len(pairs_serial),
        "median_seconds_serial": round(t_serial, 4),
        "median_seconds_parallel": round(t_parallel, 4),
        "speedup_parallel": round(speedup, 2),
        "pool": pool_stats,
        "pairs_identical": True,
    })

    if not dispatched:
        pytest.skip("process pool unavailable: serial fallback "
                    "measured, equivalence still asserted")
    assert parallel_probed == probed > 0
    if (os.cpu_count() or 1) < 4:
        pytest.skip("probe speedup acceptance needs a multicore "
                    f"runner (measured {speedup:.2f}x; recorded)")
    assert speedup >= 1.0, (
        f"concurrent shard probes ran {speedup:.2f}x serial speed on "
        f"{os.cpu_count()} cores (see {RESULT_PATH})")


def test_full_join_byte_identical_across_probe_modes():
    sl, sr = _build_catalog()
    catalog = {"L": sl, "R": sr}
    parallel.reset_stats()
    parallel.shutdown_pool()
    try:
        index.clear_index_cache()
        with caching(None):
            ctx = QueryContext()
            start = time.perf_counter()
            serial = _rows(execute(_sharded_plan(), catalog,
                                   use_optimizer=False, ctx=ctx))
            t_serial = time.perf_counter() - start
            assert ctx.stats.shard_pairs_parallel == 0

            ctx = QueryContext()
            start = time.perf_counter()
            fanned = _rows(execute(_sharded_plan(workers=WORKERS),
                                   catalog, use_optimizer=False,
                                   ctx=ctx))
            t_parallel = time.perf_counter() - start
            parallel_probed = ctx.stats.shard_pairs_parallel
    finally:
        parallel.shutdown_pool()

    assert fanned == serial
    _record("full_join", {
        "result_rows": len(serial),
        "seconds_serial_probes": round(t_serial, 4),
        "seconds_parallel_probes": round(t_parallel, 4),
        "shard_pairs_parallel": parallel_probed,
        "results_identical": True,
    })

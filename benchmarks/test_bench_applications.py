"""E13 — end-to-end application queries from the three realms the paper
motivates: office design, submarine MDA, manufacturing LP."""

import pytest

from repro import lyric
from repro.workloads import manufacturing, mda, office
from conftest import (
    manufacturing_workload,
    mda_workload,
    office_workload,
)


def test_office_overlap_join(benchmark):
    workload = office_workload(6, seed=4)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db, office.OVERLAP_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) % 2 == 0  # symmetric pairs


def test_mda_compatibility_join(benchmark):
    workload = mda_workload(6, 5, seed=2)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db, mda.COMPATIBLE_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) <= 30


def test_mda_within_entailment(benchmark):
    workload = mda_workload(6, 5, seed=2)
    benchmark.pedantic(
        lyric.query, args=(workload.db, mda.WITHIN_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)


def test_manufacturing_cheapest_fill(benchmark):
    workload = manufacturing_workload(3, 4, seed=1)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db,
                           manufacturing.CHEAPEST_FILL_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) >= 1


def test_manufacturing_max_output(benchmark):
    workload = manufacturing_workload(3, 4, seed=1)
    result = benchmark.pedantic(
        lyric.query, args=(workload.db,
                           manufacturing.MAX_OUTPUT_QUERY),
        rounds=1, iterations=1, warmup_rounds=0)
    assert len(result) == 6
